package graph

import (
	"fmt"
	"sort"
)

// Matching is a set of pairwise non-adjacent edges of a Graph, stored as a
// per-node matched-edge index. The zero value is not usable; construct with
// NewMatching.
type Matching struct {
	medge []int32 // matched edge id per node, -1 if free
	size  int
}

// NewMatching returns an empty matching over a graph with n nodes.
func NewMatching(n int) *Matching {
	m := &Matching{medge: make([]int32, n)}
	for i := range m.medge {
		m.medge[i] = -1
	}
	return m
}

// Clone returns a deep copy.
func (m *Matching) Clone() *Matching {
	c := &Matching{medge: make([]int32, len(m.medge)), size: m.size}
	copy(c.medge, m.medge)
	return c
}

// Size returns |M|, the number of matched edges.
func (m *Matching) Size() int { return m.size }

// Free reports whether node v is unmatched.
func (m *Matching) Free(v int) bool { return m.medge[v] == -1 }

// MatchedEdge returns the edge matching v, or -1 if v is free.
func (m *Matching) MatchedEdge(v int) int { return int(m.medge[v]) }

// Mate returns the node matched to v in g, or -1 if v is free.
func (m *Matching) Mate(g *Graph, v int) int {
	e := m.medge[v]
	if e == -1 {
		return -1
	}
	return g.Other(int(e), v)
}

// Has reports whether edge e is in the matching.
func (m *Matching) Has(g *Graph, e int) bool {
	u, _ := g.Endpoints(e)
	return int(m.medge[u]) == e
}

// Match adds edge e of g to the matching. Both endpoints must be free.
func (m *Matching) Match(g *Graph, e int) {
	u, v := g.Endpoints(e)
	if m.medge[u] != -1 || m.medge[v] != -1 {
		panic(fmt.Sprintf("matching: Match(%d) endpoint already matched", e))
	}
	m.medge[u], m.medge[v] = int32(e), int32(e)
	m.size++
}

// Unmatch removes edge e of g from the matching.
func (m *Matching) Unmatch(g *Graph, e int) {
	u, v := g.Endpoints(e)
	if int(m.medge[u]) != e || int(m.medge[v]) != e {
		panic(fmt.Sprintf("matching: Unmatch(%d) not in matching", e))
	}
	m.medge[u], m.medge[v] = -1, -1
	m.size--
}

// Edges returns the sorted list of matched edge ids.
func (m *Matching) Edges(g *Graph) []int {
	out := make([]int, 0, m.size)
	for v := range m.medge {
		e := m.medge[v]
		if e != -1 && int(g.from[e]) == v { // count each edge once, at its lower endpoint
			out = append(out, int(e))
		}
	}
	sort.Ints(out)
	return out
}

// Weight returns the total weight of the matching under g's weights.
func (m *Matching) Weight(g *Graph) float64 {
	s := 0.0
	for _, e := range m.Edges(g) {
		s += g.Weight(e)
	}
	return s
}

// Verify checks the structural invariants: every recorded edge id is valid,
// symmetric (recorded at both endpoints), and no node appears in two edges.
// Returns nil if m is a valid matching of g.
func (m *Matching) Verify(g *Graph) error {
	if len(m.medge) != g.N() {
		return fmt.Errorf("matching: node count %d != graph %d", len(m.medge), g.N())
	}
	count := 0
	for v := range m.medge {
		e := m.medge[v]
		if e == -1 {
			continue
		}
		if e < 0 || int(e) >= g.M() {
			return fmt.Errorf("matching: node %d has invalid edge %d", v, e)
		}
		u, w := g.Endpoints(int(e))
		if u != v && w != v {
			return fmt.Errorf("matching: node %d records edge %d=(%d,%d) not incident to it", v, e, u, w)
		}
		o := g.Other(int(e), v)
		if int(m.medge[o]) != int(e) {
			return fmt.Errorf("matching: edge %d recorded at %d but not at mate %d", e, v, o)
		}
		count++
	}
	if count != 2*m.size {
		return fmt.Errorf("matching: size %d inconsistent with %d matched endpoints", m.size, count)
	}
	return nil
}

// IsMaximal reports whether no edge of g has both endpoints free.
func (m *Matching) IsMaximal(g *Graph) bool {
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(e)
		if m.medge[u] == -1 && m.medge[v] == -1 {
			return false
		}
	}
	return true
}

// IsAugmentingPath reports whether the node sequence path (v0..vk) is an
// augmenting path w.r.t. m in g: endpoints free, consecutive nodes adjacent,
// edges alternate unmatched/matched/.../unmatched, and nodes are distinct.
func (m *Matching) IsAugmentingPath(g *Graph, path []int) bool {
	if len(path) < 2 || len(path)%2 != 0 {
		return false // augmenting paths have odd edge count, even node count
	}
	if !m.Free(path[0]) || !m.Free(path[len(path)-1]) {
		return false
	}
	seen := make(map[int]bool, len(path))
	for _, v := range path {
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	for i := 0; i+1 < len(path); i++ {
		e := g.EdgeBetween(path[i], path[i+1])
		if e == -1 {
			return false
		}
		wantMatched := i%2 == 1
		if m.Has(g, e) != wantMatched {
			return false
		}
	}
	return true
}

// AugmentPath flips the matching along the node sequence path, which must be
// an augmenting path (checked). The matching grows by exactly one edge.
func (m *Matching) AugmentPath(g *Graph, path []int) {
	if !m.IsAugmentingPath(g, path) {
		panic(fmt.Sprintf("matching: AugmentPath on non-augmenting path %v", path))
	}
	// Remove matched edges first, then add the unmatched ones.
	for i := 1; i+1 < len(path); i += 2 {
		m.Unmatch(g, g.EdgeBetween(path[i], path[i+1]))
	}
	for i := 0; i+1 < len(path); i += 2 {
		m.Match(g, g.EdgeBetween(path[i], path[i+1]))
	}
}

// SymDiff returns the symmetric difference M ⊕ P where P is a set of edges,
// as a new matching. It panics (via Verify) if the result is not a matching.
func (m *Matching) SymDiff(g *Graph, edges []int) (*Matching, error) {
	in := make(map[int]bool, len(edges))
	for _, e := range edges {
		in[e] = !in[e] // tolerate duplicates by parity
	}
	r := NewMatching(g.N())
	for v := 0; v < g.N(); v++ {
		e := m.medge[v]
		if e != -1 && !in[int(e)] && int(g.from[e]) == v {
			r.Match(g, int(e))
		}
	}
	for e, keep := range in {
		if keep && !m.Has(g, e) {
			u, v := g.Endpoints(e)
			if !r.Free(u) || !r.Free(v) {
				return nil, fmt.Errorf("matching: symmetric difference is not a matching at edge %d", e)
			}
			r.Match(g, e)
		}
	}
	if err := r.Verify(g); err != nil {
		return nil, err
	}
	return r, nil
}

// CollectMatching assembles a Matching from per-node matched-edge ids (-1 =
// free), as produced by distributed node programs. It panics if the two
// endpoints of a recorded edge disagree — that would mean the distributed
// protocol broke its agreement invariant.
func CollectMatching(g *Graph, matchedEdge []int32) *Matching {
	m := NewMatching(g.N())
	for v := 0; v < g.N(); v++ {
		e := matchedEdge[v]
		if e < 0 {
			continue
		}
		u := g.Other(int(e), v)
		if matchedEdge[u] != e {
			panic(fmt.Sprintf("matching: endpoints %d,%d disagree on matched edge %d", v, u, e))
		}
		if v < u {
			m.Match(g, int(e))
		}
	}
	return m
}

// FreeNodes returns the list of unmatched nodes.
func (m *Matching) FreeNodes() []int {
	var out []int
	for v := range m.medge {
		if m.medge[v] == -1 {
			out = append(out, v)
		}
	}
	return out
}
