package graph

import "testing"

// path5 returns the path 0-1-2-3-4 with weights 1..4.
func path5(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(5)
	for v := 0; v < 4; v++ {
		b.AddWeightedEdge(v, v+1, float64(v+1))
	}
	return b.MustBuild()
}

func TestMatchUnmatch(t *testing.T) {
	g := path5(t)
	m := NewMatching(g.N())
	e := g.EdgeBetween(1, 2)
	m.Match(g, e)
	if m.Size() != 1 || m.Free(1) || m.Free(2) || !m.Free(0) {
		t.Fatal("match state wrong")
	}
	if m.Mate(g, 1) != 2 || m.Mate(g, 2) != 1 || m.Mate(g, 0) != -1 {
		t.Fatal("mate wrong")
	}
	if !m.Has(g, e) {
		t.Fatal("Has wrong")
	}
	if err := m.Verify(g); err != nil {
		t.Fatal(err)
	}
	m.Unmatch(g, e)
	if m.Size() != 0 || !m.Free(1) {
		t.Fatal("unmatch state wrong")
	}
}

func TestMatchConflictPanics(t *testing.T) {
	g := path5(t)
	m := NewMatching(g.N())
	m.Match(g, g.EdgeBetween(1, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting match accepted")
		}
	}()
	m.Match(g, g.EdgeBetween(2, 3))
}

func TestWeightAndEdges(t *testing.T) {
	g := path5(t)
	m := NewMatching(g.N())
	m.Match(g, g.EdgeBetween(0, 1)) // weight 1
	m.Match(g, g.EdgeBetween(2, 3)) // weight 3
	if m.Weight(g) != 4 {
		t.Fatalf("weight %v want 4", m.Weight(g))
	}
	es := m.Edges(g)
	if len(es) != 2 {
		t.Fatalf("edges %v", es)
	}
}

func TestIsMaximal(t *testing.T) {
	g := path5(t)
	m := NewMatching(g.N())
	m.Match(g, g.EdgeBetween(1, 2))
	if m.IsMaximal(g) {
		t.Fatal("not maximal: edge (3,4) free")
	}
	m.Match(g, g.EdgeBetween(3, 4))
	if !m.IsMaximal(g) {
		t.Fatal("should be maximal")
	}
}

func TestAugmentingPath(t *testing.T) {
	g := path5(t)
	m := NewMatching(g.N())
	m.Match(g, g.EdgeBetween(1, 2))
	path := []int{0, 1, 2, 3}
	if !m.IsAugmentingPath(g, path) {
		t.Fatal("0-1-2-3 should be augmenting")
	}
	m.AugmentPath(g, path)
	if m.Size() != 2 || !m.Has(g, g.EdgeBetween(0, 1)) || !m.Has(g, g.EdgeBetween(2, 3)) {
		t.Fatal("augment result wrong")
	}
	if err := m.Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestIsAugmentingPathRejects(t *testing.T) {
	g := path5(t)
	m := NewMatching(g.N())
	m.Match(g, g.EdgeBetween(1, 2))
	cases := [][]int{
		{0, 1},          // ends at matched node
		{0, 1, 2},       // even length (odd node count)
		{3, 4},          // valid!
		{0, 1, 2, 4},    // non-adjacent hop
		{1, 2, 3, 4},    // starts at matched node
		{0, 1, 2, 3, 4}, // wrong parity
	}
	want := []bool{false, false, true, false, false, false}
	for i, p := range cases {
		if m.IsAugmentingPath(g, p) != want[i] {
			t.Fatalf("case %d (%v): got %v", i, p, !want[i])
		}
	}
}

func TestSymDiff(t *testing.T) {
	g := path5(t)
	m := NewMatching(g.N())
	m.Match(g, g.EdgeBetween(1, 2))
	// P = edges of augmenting path 0-1-2-3
	p := []int{g.EdgeBetween(0, 1), g.EdgeBetween(1, 2), g.EdgeBetween(2, 3)}
	r, err := m.SymDiff(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 2 || !r.Has(g, g.EdgeBetween(0, 1)) || !r.Has(g, g.EdgeBetween(2, 3)) {
		t.Fatal("symdiff result wrong")
	}
	// A new edge disjoint from the kept matching is fine.
	if r2, err := m.SymDiff(g, []int{g.EdgeBetween(3, 4)}); err != nil || r2.Size() != 2 {
		t.Fatalf("disjoint edge symdiff: %v (err %v)", r2, err)
	}
	// A new edge adjacent to a kept matched edge must be rejected.
	if _, err := m.SymDiff(g, []int{g.EdgeBetween(0, 1)}); err == nil {
		t.Fatal("conflicting symdiff accepted")
	}
	// A duplicated edge cancels by parity and leaves m unchanged.
	if r3, err := m.SymDiff(g, []int{g.EdgeBetween(0, 1), g.EdgeBetween(0, 1)}); err != nil || r3.Size() != 1 {
		t.Fatalf("parity cancel symdiff: %v (err %v)", r3, err)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := path5(t)
	m := NewMatching(g.N())
	m.Match(g, g.EdgeBetween(0, 1))
	c := m.Clone()
	c.Unmatch(g, g.EdgeBetween(0, 1))
	if m.Size() != 1 || c.Size() != 0 {
		t.Fatal("clone not independent")
	}
}

func TestFreeNodes(t *testing.T) {
	g := path5(t)
	m := NewMatching(g.N())
	m.Match(g, g.EdgeBetween(1, 2))
	fn := m.FreeNodes()
	if len(fn) != 3 || fn[0] != 0 || fn[1] != 3 || fn[2] != 4 {
		t.Fatalf("free nodes %v", fn)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	g := path5(t)
	m := NewMatching(g.N())
	m.Match(g, g.EdgeBetween(0, 1))
	m.medge[1] = -1 // corrupt: asymmetric record
	if err := m.Verify(g); err == nil {
		t.Fatal("verify missed asymmetric corruption")
	}
	m2 := NewMatching(g.N())
	m2.medge[0] = 99 // invalid edge id
	if err := m2.Verify(g); err == nil {
		t.Fatal("verify missed invalid edge id")
	}
}
