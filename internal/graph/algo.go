package graph

// Classical graph utilities used across the repository: BFS distances,
// connected components, and diameter. The diameter matters to this project
// specifically because the simulator's global aggregation primitives
// (dist.StepOr and friends) cost Θ(diameter) rounds in a real network —
// experiment notes convert Stats.OracleCalls into real rounds with it.

// BFSFrom returns hop distances from src (-1 where unreachable).
func (g *Graph) BFSFrom(src int) []int {
	distTo := make([]int, g.n)
	for i := range distTo {
		distTo[i] = -1
	}
	distTo[src] = 0
	queue := make([]int32, 0, g.n)
	queue = append(queue, int32(src))
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for p := g.off[v]; p < g.off[v+1]; p++ {
			u := g.nbr[p]
			if distTo[u] == -1 {
				distTo[u] = distTo[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return distTo
}

// Components returns a component id per node and the component count.
func (g *Graph) Components() ([]int, int) {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	count := 0
	var queue []int32
	for s := 0; s < g.n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = count
		queue = append(queue[:0], int32(s))
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for p := g.off[v]; p < g.off[v+1]; p++ {
				u := g.nbr[p]
				if comp[u] == -1 {
					comp[u] = count
					queue = append(queue, u)
				}
			}
		}
		count++
	}
	return comp, count
}

// Connected reports whether the graph has exactly one component (and at
// least one node).
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return false
	}
	_, c := g.Components()
	return c == 1
}

// Diameter returns the exact diameter of the largest component via BFS from
// every node — O(n·m); intended for the experiment workloads. Returns 0 for
// empty or edgeless graphs.
func (g *Graph) Diameter() int {
	d := 0
	for v := 0; v < g.n; v++ {
		for _, x := range g.BFSFrom(v) {
			if x > d {
				d = x
			}
		}
	}
	return d
}

// DiameterLowerBound returns a cheap lower bound via a double BFS sweep
// from src — exact on trees, a 1/2-approximation in general. O(m).
func (g *Graph) DiameterLowerBound(src int) int {
	if g.n == 0 {
		return 0
	}
	far := func(from int) (int, int) {
		best, bestD := from, 0
		for v, x := range g.BFSFrom(from) {
			if x > bestD {
				best, bestD = v, x
			}
		}
		return best, bestD
	}
	a, _ := far(src)
	_, d := far(a)
	return d
}

// Eccentricity returns the maximum finite distance from v.
func (g *Graph) Eccentricity(v int) int {
	e := 0
	for _, x := range g.BFSFrom(v) {
		if x > e {
			e = x
		}
	}
	return e
}

// DegreeHistogram returns counts[d] = number of nodes of degree d.
func (g *Graph) DegreeHistogram() []int {
	h := make([]int, g.maxDeg+1)
	for v := 0; v < g.n; v++ {
		h[g.Deg(v)]++
	}
	return h
}
