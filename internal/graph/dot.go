package graph

import (
	"fmt"
	"io"
)

// WriteDOT renders the graph in Graphviz DOT format for visual inspection
// of small instances (the Figure 1/2 reconstructions, failing test cases).
// If m is non-nil, matched edges are drawn bold and free nodes hollow; for
// bipartite graphs the sides are shaped differently.
func (g *Graph) WriteDOT(w io.Writer, m *Matching) error {
	if _, err := fmt.Fprintln(w, "graph G {"); err != nil {
		return err
	}
	for v := 0; v < g.n; v++ {
		attrs := ""
		if g.bipartite {
			if g.side[v] == 0 {
				attrs = "shape=box"
			} else {
				attrs = "shape=ellipse"
			}
		}
		if m != nil && m.Free(v) {
			if attrs != "" {
				attrs += ","
			}
			attrs += "style=dashed"
		}
		if attrs != "" {
			attrs = " [" + attrs + "]"
		}
		if _, err := fmt.Fprintf(w, "  %d%s;\n", v, attrs); err != nil {
			return err
		}
	}
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(e)
		attrs := fmt.Sprintf("label=%q", trimFloat(g.w[e]))
		if m != nil && m.Has(g, e) {
			attrs += ",style=bold,penwidth=2"
		}
		if _, err := fmt.Fprintf(w, "  %d -- %d [%s];\n", u, v, attrs); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}
