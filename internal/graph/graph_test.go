package graph

import "testing"

func triangle(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	return b.MustBuild()
}

func TestBasicAccessors(t *testing.T) {
	g := triangle(t)
	if g.N() != 3 || g.M() != 3 || g.MaxDegree() != 2 {
		t.Fatalf("bad summary: %v", g)
	}
	for v := 0; v < 3; v++ {
		if g.Deg(v) != 2 {
			t.Fatalf("deg(%d)=%d", v, g.Deg(v))
		}
	}
}

func TestPortNumberingRoundTrip(t *testing.T) {
	b := NewBuilder(6)
	edges := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3}, {4, 5}, {3, 4}}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g := b.MustBuild()
	for v := 0; v < g.N(); v++ {
		for p := 0; p < g.Deg(v); p++ {
			u := g.NbrAt(v, p)
			q := g.RevAt(v, p)
			if g.NbrAt(u, q) != v {
				t.Fatalf("reverse port broken: v=%d p=%d u=%d q=%d", v, p, u, q)
			}
			if g.EdgeAt(v, p) != g.EdgeAt(u, q) {
				t.Fatalf("edge id mismatch across ports")
			}
			eu, ev := g.Endpoints(g.EdgeAt(v, p))
			if !(eu == v && ev == u) && !(eu == u && ev == v) {
				t.Fatalf("endpoints of %d don't match (%d,%d)", g.EdgeAt(v, p), v, u)
			}
		}
	}
}

func TestDuplicateEdgeRejected(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self loop accepted")
		}
	}()
	NewBuilder(2).AddEdge(1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out of range accepted")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestBipartiteDetection(t *testing.T) {
	// Even cycle is bipartite, odd is not.
	b := NewBuilder(4)
	for v := 0; v < 4; v++ {
		b.AddEdge(v, (v+1)%4)
	}
	g := b.MustBuild()
	if !g.IsBipartite() {
		t.Fatal("C4 should be bipartite")
	}
	if g.Side(0) == g.Side(1) || g.Side(0) != g.Side(2) {
		t.Fatal("C4 sides wrong")
	}
	if triangle(t).IsBipartite() {
		t.Fatal("triangle reported bipartite")
	}
}

func TestDeclaredSidesValidated(t *testing.T) {
	b := NewBuilder(3)
	b.SetSide(0, 0)
	b.SetSide(1, 0)
	b.SetSide(2, 1)
	b.AddEdge(0, 1) // monochromatic
	if _, err := b.Build(); err == nil {
		t.Fatal("monochromatic edge accepted under declared bipartition")
	}
}

func TestEdgeBetweenAndOther(t *testing.T) {
	g := triangle(t)
	e := g.EdgeBetween(0, 2)
	if e == -1 {
		t.Fatal("missing edge 0-2")
	}
	if g.Other(e, 0) != 2 || g.Other(e, 2) != 0 {
		t.Fatal("Other broken")
	}
	if g.EdgeBetween(0, 0) != -1 {
		t.Fatal("EdgeBetween(0,0) should be -1")
	}
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	g2 := b.MustBuild()
	if g2.EdgeBetween(2, 3) != -1 {
		t.Fatal("nonexistent edge found")
	}
}

func TestWeights(t *testing.T) {
	b := NewBuilder(2)
	b.AddWeightedEdge(0, 1, 2.5)
	g := b.MustBuild()
	if g.Weight(0) != 2.5 || g.TotalWeight() != 2.5 {
		t.Fatal("weights wrong")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	if g.N() != 0 || g.M() != 0 {
		t.Fatal("empty graph wrong")
	}
	g1 := NewBuilder(5).MustBuild()
	if g1.M() != 0 || g1.MaxDegree() != 0 {
		t.Fatal("edgeless graph wrong")
	}
	if !g1.IsBipartite() {
		t.Fatal("edgeless graph should be trivially bipartite")
	}
}

func TestPortOf(t *testing.T) {
	g := triangle(t)
	for v := 0; v < 3; v++ {
		for p := 0; p < g.Deg(v); p++ {
			u := g.NbrAt(v, p)
			if g.PortOf(v, u) != p {
				t.Fatalf("PortOf(%d,%d) != %d", v, u, p)
			}
		}
	}
	if g.PortOf(0, 0) != -1 {
		t.Fatal("PortOf self should be -1")
	}
}
