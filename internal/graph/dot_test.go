package graph

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	b := NewBuilder(4)
	b.SetSide(0, 0)
	b.SetSide(1, 1)
	b.SetSide(2, 0)
	b.SetSide(3, 1)
	b.AddWeightedEdge(0, 1, 2.5)
	b.AddWeightedEdge(2, 3, 1)
	b.AddWeightedEdge(0, 3, 3)
	g := b.MustBuild()
	m := NewMatching(4)
	m.Match(g, g.EdgeBetween(0, 1))

	var sb strings.Builder
	if err := g.WriteDOT(&sb, m); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"graph G {",
		"0 -- 1",
		"style=bold",                 // matched edge
		`label="2.5"`,                // trimmed weight
		"shape=box",                  // X side
		"shape=ellipse",              // Y side
		"2 [shape=box,style=dashed]", // free node
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTNilMatching(t *testing.T) {
	g := NewBuilder(2).MustBuild()
	var sb strings.Builder
	if err := g.WriteDOT(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "graph G {") {
		t.Fatal("bad DOT")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{2.5: "2.5", 1: "1", 3.14: "3.14", 0.1: "0.1"}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Fatalf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
