package graph

import "testing"

func grid2x3(t *testing.T) *Graph {
	t.Helper()
	// 0-1-2
	// |   |
	// 3-4-5
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(0, 3)
	b.AddEdge(2, 5)
	return b.MustBuild()
}

func TestBFSFrom(t *testing.T) {
	g := grid2x3(t)
	d := g.BFSFrom(0)
	want := []int{0, 1, 2, 1, 2, 3}
	for v := range want {
		if d[v] != want[v] {
			t.Fatalf("dist[%d]=%d want %d", v, d[v], want[v])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	d := g.BFSFrom(0)
	if d[2] != -1 {
		t.Fatal("unreachable node has distance")
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	comp, n := g.Components()
	if n != 3 {
		t.Fatalf("components %d want 3", n)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] || comp[4] == comp[0] {
		t.Fatalf("component ids wrong: %v", comp)
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !grid2x3(t).Connected() {
		t.Fatal("connected graph reported disconnected")
	}
}

func TestDiameter(t *testing.T) {
	g := grid2x3(t)
	if d := g.Diameter(); d != 3 {
		t.Fatalf("diameter %d want 3", d)
	}
	lb := g.DiameterLowerBound(4)
	if lb > 3 || lb < 2 {
		t.Fatalf("double sweep bound %d outside [2,3]", lb)
	}
	// Path: exact diameter via double sweep.
	b := NewBuilder(7)
	for v := 0; v < 6; v++ {
		b.AddEdge(v, v+1)
	}
	p := b.MustBuild()
	if p.DiameterLowerBound(3) != 6 {
		t.Fatal("double sweep not exact on path")
	}
}

func TestEccentricity(t *testing.T) {
	g := grid2x3(t)
	// In this 6-cycle-shaped grid every node has eccentricity 3.
	if g.Eccentricity(0) != 3 || g.Eccentricity(1) != 3 {
		t.Fatalf("eccentricities wrong: %d %d", g.Eccentricity(0), g.Eccentricity(1))
	}
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	p := b.MustBuild()
	if p.Eccentricity(1) != 1 || p.Eccentricity(0) != 2 {
		t.Fatal("path eccentricities wrong")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := grid2x3(t)
	h := g.DegreeHistogram()
	if h[2] != 6 {
		t.Fatalf("histogram %v", h)
	}
	empty := NewBuilder(2).MustBuild()
	if eh := empty.DegreeHistogram(); eh[0] != 2 {
		t.Fatalf("empty histogram %v", eh)
	}
}
