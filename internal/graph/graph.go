// Package graph provides the undirected (optionally weighted, optionally
// bipartite) graph representation shared by every algorithm in this module,
// together with the Matching type and its invariant checks.
//
// Graphs are immutable once built. Adjacency is stored in CSR form with
// *port numbering*: node v's incident edges occupy ports 0..Deg(v)-1, and
// for each port the index of the reverse port at the neighbor is
// precomputed. The distributed runtime (internal/dist) relies on ports:
// a node addresses its neighbors only by local port, exactly as in the
// standard synchronous message-passing model.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph.
type Graph struct {
	n int

	off []int32 // CSR offsets, len n+1
	nbr []int32 // neighbor node per port
	eid []int32 // undirected edge id per port
	rev []int32 // port index of the reverse arc at the neighbor

	from, to []int32 // edge endpoints, from < to
	w        []float64

	side      []int8 // 0 = X, 1 = Y when bipartite; nil otherwise
	bipartite bool
	maxDeg    int
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n     int
	from  []int32
	to    []int32
	w     []float64
	side  []int8
	sided bool
}

// NewBuilder returns a builder for a graph on n nodes (ids 0..n-1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n}
}

// SetSide declares the bipartition side of node v (0 = X, 1 = Y).
// If any side is set, Build verifies every edge is bichromatic.
func (b *Builder) SetSide(v int, side int8) {
	if b.side == nil {
		b.side = make([]int8, b.n)
		for i := range b.side {
			b.side[i] = -1
		}
	}
	b.side[v] = side
	b.sided = true
}

// AddEdge adds an unweighted edge (weight 1) between u and v.
func (b *Builder) AddEdge(u, v int) { b.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge adds an edge between u and v with weight w.
// Self-loops are rejected immediately; duplicate edges are rejected at Build.
func (b *Builder) AddWeightedEdge(u, v int, w float64) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u > v {
		u, v = v, u
	}
	b.from = append(b.from, int32(u))
	b.to = append(b.to, int32(v))
	b.w = append(b.w, w)
}

// Build validates the accumulated edges and returns the immutable graph.
func (b *Builder) Build() (*Graph, error) {
	m := len(b.from)
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, c := order[i], order[j]
		if b.from[a] != b.from[c] {
			return b.from[a] < b.from[c]
		}
		return b.to[a] < b.to[c]
	})
	g := &Graph{
		n:    b.n,
		from: make([]int32, m),
		to:   make([]int32, m),
		w:    make([]float64, m),
	}
	for i, o := range order {
		if i > 0 && b.from[o] == g.from[i-1] && b.to[o] == g.to[i-1] {
			return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", b.from[o], b.to[o])
		}
		g.from[i], g.to[i], g.w[i] = b.from[o], b.to[o], b.w[o]
	}

	deg := make([]int32, b.n)
	for i := 0; i < m; i++ {
		deg[g.from[i]]++
		deg[g.to[i]]++
	}
	g.off = make([]int32, b.n+1)
	for v := 0; v < b.n; v++ {
		g.off[v+1] = g.off[v] + deg[v]
		if int(deg[v]) > g.maxDeg {
			g.maxDeg = int(deg[v])
		}
	}
	g.nbr = make([]int32, 2*m)
	g.eid = make([]int32, 2*m)
	g.rev = make([]int32, 2*m)
	fill := make([]int32, b.n)
	copy(fill, g.off[:b.n])
	for e := 0; e < m; e++ {
		u, v := g.from[e], g.to[e]
		pu, pv := fill[u], fill[v]
		g.nbr[pu], g.eid[pu] = v, int32(e)
		g.nbr[pv], g.eid[pv] = u, int32(e)
		g.rev[pu] = pv - g.off[v]
		g.rev[pv] = pu - g.off[u]
		fill[u]++
		fill[v]++
	}

	if b.sided {
		for v := 0; v < b.n; v++ {
			if b.side[v] != 0 && b.side[v] != 1 {
				return nil, fmt.Errorf("graph: node %d has no declared side", v)
			}
		}
		for e := 0; e < m; e++ {
			if b.side[g.from[e]] == b.side[g.to[e]] {
				return nil, fmt.Errorf("graph: edge (%d,%d) is monochromatic in declared bipartition",
					g.from[e], g.to[e])
			}
		}
		g.side = b.side
		g.bipartite = true
	} else {
		g.side, g.bipartite = twoColor(g)
	}
	return g, nil
}

// MustBuild is Build that panics on error; for generators and tests.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// twoColor attempts a 2-coloring; on success returns (sides, true).
func twoColor(g *Graph) ([]int8, bool) {
	side := make([]int8, g.n)
	for i := range side {
		side[i] = -1
	}
	queue := make([]int32, 0, g.n)
	for s := 0; s < g.n; s++ {
		if side[s] != -1 {
			continue
		}
		side[s] = 0
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for p := g.off[v]; p < g.off[v+1]; p++ {
				u := g.nbr[p]
				if side[u] == -1 {
					side[u] = 1 - side[v]
					queue = append(queue, u)
				} else if side[u] == side[v] {
					return nil, false
				}
			}
		}
	}
	return side, true
}

// CSR exposes the raw adjacency arrays for zero-copy consumers (the
// distributed engine's flat port tables): off has length n+1; for arc
// a = off[v]+p, nbr[a] is v's neighbor at port p, eid[a] the undirected
// edge id, and rev[a] the reverse port index at that neighbor. The
// returned slices are the graph's own storage — callers must treat them
// as read-only.
func (g *Graph) CSR() (off, nbr, eid, rev []int32) { return g.off, g.nbr, g.eid, g.rev }

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.from) }

// MaxDegree returns the maximum node degree Δ.
func (g *Graph) MaxDegree() int { return g.maxDeg }

// Deg returns the degree of node v.
func (g *Graph) Deg(v int) int { return int(g.off[v+1] - g.off[v]) }

// NbrAt returns the neighbor of v at port p.
func (g *Graph) NbrAt(v, p int) int { return int(g.nbr[g.off[v]+int32(p)]) }

// EdgeAt returns the undirected edge id incident to v at port p.
func (g *Graph) EdgeAt(v, p int) int { return int(g.eid[g.off[v]+int32(p)]) }

// RevAt returns the port at NbrAt(v,p) whose arc points back to v.
func (g *Graph) RevAt(v, p int) int { return int(g.rev[g.off[v]+int32(p)]) }

// Endpoints returns the endpoints of edge e with u < v.
func (g *Graph) Endpoints(e int) (u, v int) { return int(g.from[e]), int(g.to[e]) }

// Other returns the endpoint of edge e that is not v.
func (g *Graph) Other(e, v int) int {
	if int(g.from[e]) == v {
		return int(g.to[e])
	}
	if int(g.to[e]) != v {
		panic("graph: Other called with non-endpoint")
	}
	return int(g.from[e])
}

// Weight returns the weight of edge e.
func (g *Graph) Weight(e int) float64 { return g.w[e] }

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	s := 0.0
	for _, x := range g.w {
		s += x
	}
	return s
}

// IsBipartite reports whether the graph admits (or was declared with) a
// bipartition.
func (g *Graph) IsBipartite() bool { return g.bipartite }

// Side returns the bipartition side of v (0 = X, 1 = Y). It panics if the
// graph is not bipartite.
func (g *Graph) Side(v int) int {
	if !g.bipartite {
		panic("graph: Side on non-bipartite graph")
	}
	return int(g.side[v])
}

// EdgeBetween returns the edge id connecting u and v, or -1.
func (g *Graph) EdgeBetween(u, v int) int {
	if g.Deg(u) > g.Deg(v) {
		u, v = v, u
	}
	for p := g.off[u]; p < g.off[u+1]; p++ {
		if int(g.nbr[p]) == v {
			return int(g.eid[p])
		}
	}
	return -1
}

// PortOf returns v's port leading to neighbor u, or -1.
func (g *Graph) PortOf(v, u int) int {
	for p := g.off[v]; p < g.off[v+1]; p++ {
		if int(g.nbr[p]) == u {
			return int(p - g.off[v])
		}
	}
	return -1
}

// Degrees returns a fresh slice of all node degrees.
func (g *Graph) Degrees() []int {
	d := make([]int, g.n)
	for v := range d {
		d[v] = g.Deg(v)
	}
	return d
}

// String implements fmt.Stringer with a short summary.
func (g *Graph) String() string {
	kind := "general"
	if g.bipartite {
		kind = "bipartite"
	}
	return fmt.Sprintf("graph{n=%d m=%d Δ=%d %s}", g.n, g.M(), g.maxDeg, kind)
}
