package gen

import (
	"testing"

	"distmatch/internal/rng"
)

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4: n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Deg(v) != 4 {
			t.Fatalf("Q4 degree %d at %d", g.Deg(v), v)
		}
	}
	if !g.IsBipartite() {
		t.Fatal("hypercubes are bipartite")
	}
	if g.Diameter() != 4 {
		t.Fatalf("Q4 diameter %d", g.Diameter())
	}
	if Hypercube(0).N() != 1 {
		t.Fatal("Q0 wrong")
	}
}

func TestTorus(t *testing.T) {
	g := Torus(4, 5)
	if g.N() != 20 || g.M() != 40 {
		t.Fatalf("torus: n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Deg(v) != 4 {
			t.Fatal("torus not 4-regular")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("2-row torus accepted")
		}
	}()
	Torus(2, 5)
}

func TestPlantedBipartite(t *testing.T) {
	g, plant := PlantedBipartite(rng.New(1), 50, 3)
	if !g.IsBipartite() || g.N() != 100 {
		t.Fatal("planted instance malformed")
	}
	// The plant must be present as edges and form a perfect matching.
	seen := make(map[int]bool)
	for i, y := range plant {
		if g.EdgeBetween(i, y) == -1 {
			t.Fatalf("planted edge (%d,%d) missing", i, y)
		}
		if seen[y] {
			t.Fatal("plant not a permutation")
		}
		seen[y] = true
	}
	// Extra edges were added.
	if g.M() <= 50 {
		t.Fatalf("no extra edges: m=%d", g.M())
	}
}

func TestBlowupPath(t *testing.T) {
	g := BlowupPath(3, 4)
	if g.N() != 24 || g.M() != 21 {
		t.Fatalf("blowup: n=%d m=%d", g.N(), g.M())
	}
	if !g.IsBipartite() {
		t.Fatal("blowup should be bipartite")
	}
	if g.MaxDegree() != 2 {
		t.Fatal("blowup paths should have max degree 2")
	}
}
