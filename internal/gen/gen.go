// Package gen produces the synthetic graph workloads used by the tests,
// examples, and benchmark harness. Every generator is deterministic given a
// seed (via internal/rng) and returns an immutable graph.
//
// The paper being reproduced is a theory paper with no testbed traces, so
// these generators are the workload substitutes: Erdős–Rényi and bipartite
// random graphs for the scaling experiments, regular graphs and grids for
// bounded-degree behaviour, preferential attachment for skewed degrees, and
// adversarial weighted chains for the weighted-matching pathologies.
package gen

import (
	"math"

	"distmatch/internal/graph"
	"distmatch/internal/rng"
)

// Gnp returns an Erdős–Rényi graph G(n, p) with unit weights.
func Gnp(r *rng.Rand, n int, p float64) *graph.Graph {
	b := graph.NewBuilder(n)
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.AddEdge(u, v)
			}
		}
		return b.MustBuild()
	}
	if p > 0 {
		// Geometric skipping: iterate potential edges in lexicographic order,
		// jumping log(1-u)/log(1-p) positions at a time.
		logq := math.Log1p(-p)
		k := int64(-1)
		total := int64(n) * int64(n-1) / 2
		for {
			u := r.Float64()
			skip := int64(math.Floor(math.Log1p(-u) / logq))
			k += 1 + skip
			if k >= total {
				break
			}
			i, j := unrankPair(k, n)
			b.AddEdge(i, j)
		}
	}
	return b.MustBuild()
}

// unrankPair maps k in [0, n(n-1)/2) to the k-th pair (i,j), i<j, in
// lexicographic order.
func unrankPair(k int64, n int) (int, int) {
	i := 0
	row := int64(n - 1)
	for k >= row {
		k -= row
		i++
		row--
	}
	return i, i + 1 + int(k)
}

// Gnm returns a uniform random graph with exactly m distinct edges.
func Gnm(r *rng.Rand, n, m int) *graph.Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic("gen: Gnm with m exceeding complete graph")
	}
	b := graph.NewBuilder(n)
	seen := make(map[int64]bool, m)
	for len(seen) < m {
		u := r.Intn(n)
		v := r.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)*int64(n) + int64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(u, v)
	}
	return b.MustBuild()
}

// BipartiteGnp returns a random bipartite graph with nx left (X, side 0) and
// ny right (Y, side 1) nodes, each cross pair present with probability p.
// X nodes are 0..nx-1 and Y nodes are nx..nx+ny-1.
func BipartiteGnp(r *rng.Rand, nx, ny int, p float64) *graph.Graph {
	b := graph.NewBuilder(nx + ny)
	for v := 0; v < nx; v++ {
		b.SetSide(v, 0)
	}
	for v := nx; v < nx+ny; v++ {
		b.SetSide(v, 1)
	}
	if p > 0 {
		logq := math.Log1p(-p)
		k := int64(-1)
		total := int64(nx) * int64(ny)
		for {
			var skip int64
			if p >= 1 {
				skip = 0
			} else {
				skip = int64(math.Floor(math.Log1p(-r.Float64()) / logq))
			}
			k += 1 + skip
			if k >= total {
				break
			}
			b.AddEdge(int(k/int64(ny)), nx+int(k%int64(ny)))
		}
	}
	return b.MustBuild()
}

// BipartiteRegular returns a bipartite d-regular graph on n+n nodes built
// from d random perfect matchings (parallel edges are retried, so the result
// is a simple graph; requires d <= n).
func BipartiteRegular(r *rng.Rand, n, d int) *graph.Graph {
	if d > n {
		panic("gen: BipartiteRegular requires d <= n")
	}
	b := graph.NewBuilder(2 * n)
	for v := 0; v < n; v++ {
		b.SetSide(v, 0)
		b.SetSide(n+v, 1)
	}
	used := make(map[int64]bool, n*d)
	for round := 0; round < d; round++ {
		for attempt := 0; ; attempt++ {
			perm := r.Perm(n)
			ok := true
			for i := 0; i < n; i++ {
				if used[int64(i)*int64(n)+int64(perm[i])] {
					ok = false
					break
				}
			}
			if ok {
				for i := 0; i < n; i++ {
					used[int64(i)*int64(n)+int64(perm[i])] = true
					b.AddEdge(i, n+perm[i])
				}
				break
			}
			if attempt > 200 {
				panic("gen: BipartiteRegular failed to place a matching (d too close to n?)")
			}
		}
	}
	return b.MustBuild()
}

// Path returns the path graph on n nodes (0-1-2-...-(n-1)).
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.MustBuild()
}

// Cycle returns the cycle on n >= 3 nodes.
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic("gen: Cycle needs n >= 3")
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(v, (v+1)%n)
	}
	return b.MustBuild()
}

// Star returns the star with one hub (node 0) and n-1 leaves.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.MustBuild()
}

// Complete returns K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.MustBuild()
}

// CompleteBipartite returns K_{a,b} with declared sides.
func CompleteBipartite(a, b int) *graph.Graph {
	bl := graph.NewBuilder(a + b)
	for v := 0; v < a; v++ {
		bl.SetSide(v, 0)
	}
	for v := a; v < a+b; v++ {
		bl.SetSide(v, 1)
	}
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			bl.AddEdge(u, v)
		}
	}
	return bl.MustBuild()
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// RandomTree returns a uniform random recursive tree on n nodes: node v > 0
// attaches to a uniformly random earlier node.
func RandomTree(r *rng.Rand, n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(r.Intn(v), v)
	}
	return b.MustBuild()
}

// PrefAttach returns a preferential-attachment graph: each new node adds d
// edges to existing nodes chosen proportionally to degree (with retries to
// keep the graph simple). Produces skewed degree distributions.
func PrefAttach(r *rng.Rand, n, d int) *graph.Graph {
	if n < d+1 {
		panic("gen: PrefAttach needs n >= d+1")
	}
	b := graph.NewBuilder(n)
	// endpoint multiset for proportional sampling
	ends := make([]int, 0, 2*n*d)
	// seed clique on d+1 nodes
	for u := 0; u <= d; u++ {
		for v := u + 1; v <= d; v++ {
			b.AddEdge(u, v)
			ends = append(ends, u, v)
		}
	}
	for v := d + 1; v < n; v++ {
		chosen := make(map[int]bool, d)
		for len(chosen) < d {
			u := ends[r.Intn(len(ends))]
			if u != v {
				chosen[u] = true
			}
		}
		for u := range chosen {
			b.AddEdge(u, v)
			ends = append(ends, u, v)
		}
	}
	return b.MustBuild()
}

// DRegular returns a random d-regular simple graph on n nodes via the
// configuration model with restart on collision. n*d must be even.
func DRegular(r *rng.Rand, n, d int) *graph.Graph {
	if n*d%2 != 0 {
		panic("gen: DRegular requires n*d even")
	}
	if d >= n {
		panic("gen: DRegular requires d < n")
	}
	for attempt := 0; attempt < 500; attempt++ {
		stubs := make([]int, 0, n*d)
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, v)
			}
		}
		r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		ok := true
		seen := make(map[int64]bool, n*d/2)
		b := graph.NewBuilder(n)
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			if u > v {
				u, v = v, u
			}
			key := int64(u)*int64(n) + int64(v)
			if seen[key] {
				ok = false
				break
			}
			seen[key] = true
			b.AddEdge(u, v)
		}
		if ok {
			return b.MustBuild()
		}
	}
	panic("gen: DRegular failed after 500 attempts")
}
