package gen

import "distmatch/internal/graph"

// The two figures in the paper are worked examples rather than experimental
// plots. The published text does not include the figures' exact drawings, so
// these constructors rebuild instances that reproduce each figure's claim
// with the same headline numbers (see DESIGN.md §3, substitution 4).

// Figure1Instance reconstructs the flavor of the paper's Figure 1: a
// bipartite graph with a partial matching in which the counting BFS
// (Algorithm 3) accumulates path counts layer by layer. It returns the
// graph, the matching, the free Y node at which counts accumulate, and the
// expected number of augmenting paths (3) of length 3 ending there.
//
// Layout (X side left, Y side right; * = free):
//
//	x0* ──┬── y1 ══ x1 ──┐
//	x0'*──┘              ├── yF*
//	x0* ───── y2 ══ x2 ──┘
//
// (double line = matched). The three augmenting paths of length 3 ending at
// yF are x0-y1-x1-yF, x0'-y1-x1-yF and x0-y2-x2-yF, so the counting
// algorithm must report n_yF = 3, receiving 2 from x1's side and 1 from
// x2's side — the per-layer sums the figure annotates.
func Figure1Instance() (g *graph.Graph, m *graph.Matching, freeY int, wantPaths int) {
	// X nodes: x0=0, x0'=1, x1=2, x2=3.  Y nodes: y1=4, y2=5, yF=6.
	b := graph.NewBuilder(7)
	for _, v := range []int{0, 1, 2, 3} {
		b.SetSide(v, 0)
	}
	for _, v := range []int{4, 5, 6} {
		b.SetSide(v, 1)
	}
	b.AddEdge(0, 4) // x0 - y1
	b.AddEdge(1, 4) // x0' - y1
	b.AddEdge(0, 5) // x0 - y2
	b.AddEdge(2, 4) // x1 = y1 (matched)
	b.AddEdge(3, 5) // x2 = y2 (matched)
	b.AddEdge(2, 6) // x1 - yF
	b.AddEdge(3, 6) // x2 - yF
	g = b.MustBuild()
	m = graph.NewMatching(g.N())
	m.Match(g, g.EdgeBetween(2, 4))
	m.Match(g, g.EdgeBetween(3, 5))
	return g, m, 6, 3
}

// Figure2Instance reconstructs the paper's Figure 2 arithmetic: a matching M
// with w(M) = 14, a second matching M' with weight 10 under the derived
// weight function w_M, and M” = M ⊕ ⋃_{e∈M'} wrap(e) with w(M”) = 26 ≥
// w(M) + w_M(M') = 24 (Lemma 4.1, with strict slack coming from two wraps
// overlapping at the same M-edge).
//
// Component 1 (path a-b-c-d-e-f): weights (a,b)=1 (b,c)=5 (c,d)=2 (d,e)=4
// (e,f)=1, M-edge (c,d). Both wrap(b,c) and wrap(d,e) remove (c,d).
// Component 2 (path p-q-r-s): weights (p,q)=17 (q,r)=12 (r,s)=3, M-edge
// (q,r).
//
// M  = {(c,d):2, (q,r):12}            w(M)   = 14
// M' = {(b,c), (d,e), (p,q)}          w_M(M') = 3 + 2 + 5 = 10
// M” = {(b,c):5, (d,e):4, (p,q):17}  w(M”) = 26
func Figure2Instance() (g *graph.Graph, m *graph.Matching, mPrime []int) {
	// a=0 b=1 c=2 d=3 e=4 f=5 ; p=6 q=7 r=8 s=9
	b := graph.NewBuilder(10)
	b.AddWeightedEdge(0, 1, 1)
	b.AddWeightedEdge(1, 2, 5)
	b.AddWeightedEdge(2, 3, 2)
	b.AddWeightedEdge(3, 4, 4)
	b.AddWeightedEdge(4, 5, 1)
	b.AddWeightedEdge(6, 7, 17)
	b.AddWeightedEdge(7, 8, 12)
	b.AddWeightedEdge(8, 9, 3)
	g = b.MustBuild()
	m = graph.NewMatching(g.N())
	m.Match(g, g.EdgeBetween(2, 3))
	m.Match(g, g.EdgeBetween(7, 8))
	mPrime = []int{g.EdgeBetween(1, 2), g.EdgeBetween(3, 4), g.EdgeBetween(6, 7)}
	return g, m, mPrime
}
