package gen

import (
	"distmatch/internal/graph"
	"distmatch/internal/rng"
)

// Reweight returns a copy of g whose edge e has weight f(e, u, v), where
// (u, v) are e's endpoints. Sides are preserved for bipartite graphs.
func Reweight(g *graph.Graph, f func(e, u, v int) float64) *graph.Graph {
	b := graph.NewBuilder(g.N())
	if g.IsBipartite() {
		for v := 0; v < g.N(); v++ {
			b.SetSide(v, int8(g.Side(v)))
		}
	}
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(e)
		b.AddWeightedEdge(u, v, f(e, u, v))
	}
	return b.MustBuild()
}

// UniformWeights returns g with i.i.d. uniform weights on [lo, hi).
func UniformWeights(r *rng.Rand, g *graph.Graph, lo, hi float64) *graph.Graph {
	return Reweight(g, func(e, u, v int) float64 { return lo + (hi-lo)*r.Float64() })
}

// ExpWeights returns g with i.i.d. exponential weights with the given mean.
func ExpWeights(r *rng.Rand, g *graph.Graph, mean float64) *graph.Graph {
	return Reweight(g, func(e, u, v int) float64 { return mean * r.ExpFloat64() })
}

// IntWeights returns g with i.i.d. uniform integer weights in {1, ..., maxW}.
func IntWeights(r *rng.Rand, g *graph.Graph, maxW int) *graph.Graph {
	return Reweight(g, func(e, u, v int) float64 { return float64(1 + r.Intn(maxW)) })
}

// AdversarialChain returns a path on n nodes whose edge weights increase
// along the path (w_i = i+1). A "locally heaviest edge first" greedy matcher
// serializes completely on this instance (Θ(n) rounds), which is the
// pathology that motivates weight-class algorithms such as internal/lpr.
func AdversarialChain(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddWeightedEdge(v, v+1, float64(v+1))
	}
	return b.MustBuild()
}

// GeometricChain is AdversarialChain with exponentially growing weights
// (w_i = ratio^i), stressing weight-class counts.
func GeometricChain(n int, ratio float64) *graph.Graph {
	b := graph.NewBuilder(n)
	w := 1.0
	for v := 0; v+1 < n; v++ {
		b.AddWeightedEdge(v, v+1, w)
		w *= ratio
	}
	return b.MustBuild()
}
