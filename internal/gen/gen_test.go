package gen

import (
	"testing"
	"testing/quick"

	"distmatch/internal/rng"
)

func TestGnpDensity(t *testing.T) {
	r := rng.New(1)
	g := Gnp(r, 200, 0.1)
	want := 0.1 * 200 * 199 / 2
	if float64(g.M()) < 0.8*want || float64(g.M()) > 1.2*want {
		t.Fatalf("G(200,0.1) has %d edges, expected ≈ %.0f", g.M(), want)
	}
}

func TestGnpExtremes(t *testing.T) {
	r := rng.New(2)
	if g := Gnp(r, 20, 0); g.M() != 0 {
		t.Fatal("p=0 graph has edges")
	}
	if g := Gnp(r, 20, 1); g.M() != 190 {
		t.Fatalf("p=1 graph has %d edges, want 190", g.M())
	}
}

func TestGnpDeterministic(t *testing.T) {
	a := Gnp(rng.New(7), 100, 0.08)
	b := Gnp(rng.New(7), 100, 0.08)
	if a.M() != b.M() {
		t.Fatal("same seed produced different graphs")
	}
}

func TestGnmExactCount(t *testing.T) {
	g := Gnm(rng.New(3), 50, 123)
	if g.M() != 123 {
		t.Fatalf("Gnm edges %d, want 123", g.M())
	}
}

func TestBipartiteGnpSidesAndDensity(t *testing.T) {
	g := BipartiteGnp(rng.New(4), 80, 120, 0.05)
	if !g.IsBipartite() {
		t.Fatal("not bipartite")
	}
	for v := 0; v < 80; v++ {
		if g.Side(v) != 0 {
			t.Fatalf("node %d should be X", v)
		}
	}
	for v := 80; v < 200; v++ {
		if g.Side(v) != 1 {
			t.Fatalf("node %d should be Y", v)
		}
	}
	want := 0.05 * 80 * 120
	if float64(g.M()) < 0.7*want || float64(g.M()) > 1.3*want {
		t.Fatalf("edges %d, expected ≈ %.0f", g.M(), want)
	}
}

func TestBipartiteRegularDegrees(t *testing.T) {
	g := BipartiteRegular(rng.New(5), 30, 4)
	for v := 0; v < g.N(); v++ {
		if g.Deg(v) != 4 {
			t.Fatalf("node %d degree %d, want 4", v, g.Deg(v))
		}
	}
	if !g.IsBipartite() {
		t.Fatal("not bipartite")
	}
}

func TestFixedTopologies(t *testing.T) {
	if g := Path(6); g.M() != 5 || g.MaxDegree() != 2 {
		t.Fatal("path wrong")
	}
	if g := Cycle(6); g.M() != 6 || g.MaxDegree() != 2 {
		t.Fatal("cycle wrong")
	}
	if g := Star(7); g.M() != 6 || g.MaxDegree() != 6 {
		t.Fatal("star wrong")
	}
	if g := Complete(6); g.M() != 15 || g.MaxDegree() != 5 {
		t.Fatal("complete wrong")
	}
	if g := CompleteBipartite(3, 4); g.M() != 12 || !g.IsBipartite() {
		t.Fatal("complete bipartite wrong")
	}
	if g := Grid(3, 4); g.M() != 3*3+2*4 || g.N() != 12 {
		t.Fatal("grid wrong")
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	g := RandomTree(rng.New(6), 50)
	if g.M() != 49 {
		t.Fatalf("tree edges %d", g.M())
	}
	if !g.IsBipartite() {
		t.Fatal("trees are bipartite")
	}
}

func TestPrefAttachDegrees(t *testing.T) {
	g := PrefAttach(rng.New(7), 200, 3)
	if g.N() != 200 {
		t.Fatal("size wrong")
	}
	// Every non-seed node has degree >= 3; hub degrees should be skewed.
	if g.MaxDegree() < 8 {
		t.Fatalf("expected a hub, max degree %d", g.MaxDegree())
	}
}

func TestDRegular(t *testing.T) {
	g := DRegular(rng.New(8), 40, 3)
	for v := 0; v < 40; v++ {
		if g.Deg(v) != 3 {
			t.Fatalf("node %d degree %d", v, g.Deg(v))
		}
	}
}

func TestWeightGenerators(t *testing.T) {
	g0 := Path(30)
	u := UniformWeights(rng.New(9), g0, 2, 5)
	for e := 0; e < u.M(); e++ {
		if u.Weight(e) < 2 || u.Weight(e) >= 5 {
			t.Fatalf("uniform weight out of range: %v", u.Weight(e))
		}
	}
	x := ExpWeights(rng.New(10), g0, 3)
	for e := 0; e < x.M(); e++ {
		if x.Weight(e) < 0 {
			t.Fatal("negative exp weight")
		}
	}
	iw := IntWeights(rng.New(11), g0, 6)
	for e := 0; e < iw.M(); e++ {
		w := iw.Weight(e)
		if w != float64(int(w)) || w < 1 || w > 6 {
			t.Fatalf("bad int weight %v", w)
		}
	}
}

func TestAdversarialChain(t *testing.T) {
	g := AdversarialChain(10)
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(e)
		if g.Weight(e) != float64(min(u, v)+1) {
			t.Fatalf("chain weight at edge %d: %v", e, g.Weight(e))
		}
	}
	gg := GeometricChain(6, 2)
	if gg.Weight(gg.EdgeBetween(4, 5)) != 16 {
		t.Fatal("geometric chain wrong")
	}
}

func TestReweightPreservesStructure(t *testing.T) {
	g := BipartiteGnp(rng.New(12), 10, 10, 0.3)
	w := Reweight(g, func(e, u, v int) float64 { return float64(u + v) })
	if w.M() != g.M() || !w.IsBipartite() {
		t.Fatal("reweight changed structure")
	}
	for e := 0; e < w.M(); e++ {
		u, v := w.Endpoints(e)
		if w.Weight(e) != float64(u+v) {
			t.Fatal("reweight function not applied")
		}
	}
}

func TestGeneratorsAreSimpleGraphs(t *testing.T) {
	// quick.Check over seeds: no generator may emit duplicate edges or
	// self-loops (the builder would reject them with a panic/error).
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		Gnp(r.Fork(1), 30, 0.2)
		Gnm(r.Fork(2), 30, 60)
		BipartiteGnp(r.Fork(3), 15, 15, 0.2)
		RandomTree(r.Fork(4), 30)
		PrefAttach(r.Fork(5), 40, 2)
		DRegular(r.Fork(6), 20, 3)
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFigure1Instance(t *testing.T) {
	g, m, freeY, want := Figure1Instance()
	if err := m.Verify(g); err != nil {
		t.Fatal(err)
	}
	if !g.IsBipartite() || g.Side(freeY) != 1 || !m.Free(freeY) {
		t.Fatal("figure 1 instance malformed")
	}
	if want != 3 {
		t.Fatal("figure 1 expected count changed")
	}
}

func TestFigure2Instance(t *testing.T) {
	g, m, mPrime := Figure2Instance()
	if err := m.Verify(g); err != nil {
		t.Fatal(err)
	}
	if m.Weight(g) != 14 {
		t.Fatalf("w(M) = %v, want 14 as in Figure 2", m.Weight(g))
	}
	if len(mPrime) != 3 {
		t.Fatalf("M' size %d", len(mPrime))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
