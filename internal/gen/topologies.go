package gen

import (
	"distmatch/internal/graph"
	"distmatch/internal/rng"
)

// Additional fixed and planted topologies used by the wider test suite:
// hypercubes and tori exercise the algorithms on structured bounded-degree
// networks; planted instances carry a known perfect matching, giving exact
// optima without running a reference matcher.

// Hypercube returns the d-dimensional hypercube on 2^d nodes.
func Hypercube(d int) *graph.Graph {
	if d < 0 || d > 20 {
		panic("gen: Hypercube dimension out of range")
	}
	n := 1 << d
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			u := v ^ (1 << i)
			if v < u {
				b.AddEdge(v, u)
			}
		}
	}
	return b.MustBuild()
}

// Torus returns the rows×cols torus (grid with wraparound). Both dimensions
// must be at least 3 so the graph stays simple.
func Torus(rows, cols int) *graph.Graph {
	if rows < 3 || cols < 3 {
		panic("gen: Torus needs both dimensions >= 3")
	}
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id(r, (c+1)%cols))
			b.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return b.MustBuild()
}

// PlantedBipartite returns a bipartite graph on n+n nodes containing a
// planted perfect matching (a hidden permutation) plus extra random
// bichromatic edges at the given expected degree. The maximum matching is
// exactly n, so approximation ratios can be computed without an exact
// matcher. The planted permutation is returned (plant[i] = Y partner of X
// node i, as a node id in [n, 2n)).
func PlantedBipartite(r *rng.Rand, n int, extraDeg float64) (*graph.Graph, []int) {
	b := graph.NewBuilder(2 * n)
	for v := 0; v < n; v++ {
		b.SetSide(v, 0)
		b.SetSide(n+v, 1)
	}
	perm := r.Perm(n)
	plant := make([]int, n)
	used := make(map[int64]bool, n)
	for i := 0; i < n; i++ {
		j := perm[i]
		plant[i] = n + j
		b.AddEdge(i, n+j)
		used[int64(i)*int64(n)+int64(j)] = true
	}
	extra := int(extraDeg * float64(n) / 2)
	for added := 0; added < extra; {
		i, j := r.Intn(n), r.Intn(n)
		key := int64(i)*int64(n) + int64(j)
		if used[key] {
			continue
		}
		used[key] = true
		b.AddEdge(i, n+j)
		added++
	}
	return b.MustBuild(), plant
}

// BlowupPath returns the "hard" bipartite instance for augmenting-path
// algorithms: k disjoint augmenting paths of length 2L−1 arranged so
// short-sighted algorithms leave long augmenting chains. It consists of k
// parallel paths each alternating X/Y with the middle edges pre-matchable;
// its maximum matching is k·L.
func BlowupPath(k, L int) *graph.Graph {
	// Each path: x_0 y_1 x_1 y_2 ... with 2L nodes and 2L-1 edges.
	b := graph.NewBuilder(2 * L * k)
	for p := 0; p < k; p++ {
		base := 2 * L * p
		for i := 0; i < 2*L; i++ {
			if i%2 == 0 {
				b.SetSide(base+i, 0)
			} else {
				b.SetSide(base+i, 1)
			}
		}
		for i := 0; i+1 < 2*L; i++ {
			b.AddEdge(base+i, base+i+1)
		}
	}
	return b.MustBuild()
}
