GO ?= go

.PHONY: all build test vet race tier1 bench bench-engine bench-baseline bench-compare telemetry-smoke loadtest loadtest-smoke profile clean

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# tier1 is the repository's gate: everything must build and every test
# must pass, plus one engine-round benchmark iteration as a smoke check.
tier1: build vet test bench-engine

bench-engine:
	$(GO) test -bench=EngineRound -benchtime=1x -run '^$$' .

bench:
	$(GO) test -bench . -benchtime=1x -run '^$$' .

# bench-baseline records the full benchmark suite into BENCH_baseline.json
# so future performance PRs have a trajectory to compare against.
bench-baseline:
	./scripts/bench_baseline.sh

# bench-compare records coroutine-vs-flat backend node-rounds/s per
# protocol — including the core Algorithm 3-5 pipeline and the PR-7
# strict-CONGEST/LOCAL ports — plus the Config.Workers scaling sweep,
# the workers×topology grid, the batch-runner amortization pair, the
# dynamic-maintainer incremental-vs-recompute switch pair, the sharded
# serving group and the telemetry-overhead group into BENCH_pr9.json
# (set BENCHTIME=3s and COUNT=5 for stabler numbers).
bench-compare:
	./scripts/bench_compare.sh

# telemetry-smoke boots a real distmatchd (serving + debug listeners),
# drives applies through a shard kill/restart, and asserts /metrics
# parses, /v1/events shows the failover, and pprof serves.
telemetry-smoke:
	./scripts/telemetry_smoke.sh

# loadtest boots a real distmatchd and drives it with cmd/loadgen
# (concurrent exactly-once apply clients + matching readers), asserting
# the p99s off the server's own http_request_ns histograms and that the
# post-load /metrics exposition still parses. CI runs the smoke variant.
loadtest:
	./scripts/loadtest.sh full

loadtest-smoke:
	./scripts/loadtest.sh smoke

# profile captures pprof CPU + allocation profiles and a runtime trace of
# a multicore flat-backend run (override PROFILE_ARGS to aim elsewhere);
# inspect with `go tool pprof profiles/cpu.pprof` / `go tool trace
# profiles/run.trace`.
PROFILE_ARGS ?= -algo bipartite -n 4096 -deg 8 -k 3 -workers 0 -repeat 5 -opt=false
profile:
	mkdir -p profiles
	$(GO) run ./cmd/distmatch $(PROFILE_ARGS) \
		-cpuprofile profiles/cpu.pprof \
		-memprofile profiles/mem.pprof \
		-trace profiles/run.trace

clean:
	$(GO) clean ./...
