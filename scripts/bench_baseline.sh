#!/usr/bin/env bash
# Records the full benchmark suite (one iteration each) into
# BENCH_baseline.json so future performance PRs have a trajectory.
# Run from the repository root: ./scripts/bench_baseline.sh
set -euo pipefail

cd "$(dirname "$0")/.."
out=BENCH_baseline.json
raw=$(go test -bench . -benchtime=1x -run '^$' . 2>&1)

{
	echo '{'
	echo '  "recorded": "'"$(date -u +%Y-%m-%dT%H:%M:%SZ)"'",'
	echo '  "go": "'"$(go env GOVERSION)"'",'
	echo '  "gomaxprocs": '"$(nproc)"','
	echo '  "cpu": "'"$(printf '%s\n' "$raw" | sed -n 's/^cpu: //p' | head -1)"'",'
	echo '  "note": "benchtime=1x single iterations; engine rate is the node-rounds/s metric",'
	echo '  "benchmarks": ['
	printf '%s\n' "$raw" | awk '
		/^Benchmark/ {
			name=$1; sub(/-[0-9]+$/, "", name)
			nspop=$3
			extra=""
			if (NF >= 6 && $5 ~ /^[0-9.e+]+$/) extra=sprintf(", \"%s\": %s", $6, $5)
			line=sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s%s}", name, nspop, extra)
			lines[n++]=line
		}
		END {
			for (i=0; i<n; i++) printf "%s%s\n", lines[i], (i<n-1 ? "," : "")
		}'
	echo '  ]'
	echo '}'
} > "$out"

echo "wrote $out:"
cat "$out"
