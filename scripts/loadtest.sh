#!/usr/bin/env bash
# Load-test harness: boots a real distmatchd, points cmd/loadgen at it
# (concurrent exactly-once appliers + matching readers), and asserts the
# p99s the server's own http_request_ns histograms report stay under the
# bounds. Also validates the post-load /metrics exposition with
# cmd/expositioncheck — a serving process under fire must still expose
# parseable metrics.
#
# The CI loadtest job runs this in smoke mode; run it locally from the
# repo root:
#
#   ./scripts/loadtest.sh          # full: 10s of load, tighter pool
#   ./scripts/loadtest.sh smoke    # CI: 3s of load
#
# Bounds are deliberately generous (CI machines are noisy, often 1-2
# vCPUs); the regression they catch is readers stalling behind applies
# or applies stalling behind audits — both show up as orders of
# magnitude, not percentages.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=${1:-${LOADTEST_MODE:-full}}
PORT=${PORT:-18480}
BASE="http://127.0.0.1:$PORT"

case "$MODE" in
smoke)
	DURATION=3s
	CLIENTS=3
	READERS=3
	;;
full)
	DURATION=10s
	CLIENTS=6
	READERS=6
	;;
*)
	echo "usage: $0 [smoke|full]" >&2
	exit 2
	;;
esac
# p99 bounds: applies pay a full pool slot (route + shard commits +
# recompose and the occasional audit epoch); matching reads are one
# atomic snapshot load and must stay far under that even while the
# appliers saturate the slot lock.
MAX_P99_APPLY=${MAX_P99_APPLY:-2s}
MAX_P99_QUERY=${MAX_P99_QUERY:-500ms}

tmp=$(mktemp -d)
trap 'kill "$srv_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/distmatchd" ./cmd/distmatchd
go build -o "$tmp/loadgen" ./cmd/loadgen
go build -o "$tmp/expositioncheck" ./cmd/expositioncheck

"$tmp/distmatchd" -addr "127.0.0.1:$PORT" \
	-nx 64 -ny 64 -p 0.1 -shards 4 -k 2 -seed 7 -audit 8 -accesslog=false \
	>"$tmp/distmatchd.log" 2>&1 &
srv_pid=$!

for i in $(seq 1 50); do
	if curl -fsS "$BASE/v1/health" >/dev/null 2>&1; then break; fi
	if ! kill -0 "$srv_pid" 2>/dev/null; then
		echo "FAIL: distmatchd exited during startup:"; cat "$tmp/distmatchd.log"; exit 1
	fi
	sleep 0.1
done

"$tmp/loadgen" -addr "$BASE" -clients "$CLIENTS" -readers "$READERS" \
	-duration "$DURATION" -maxp99apply "$MAX_P99_APPLY" -maxp99query "$MAX_P99_QUERY" \
	| tee "$tmp/loadgen.json"

# The exposition survived the load: parseable, and carrying the pipeline
# phase histograms the load just exercised.
curl -fsS "$BASE/metrics" >"$tmp/metrics.txt"
"$tmp/expositioncheck" <"$tmp/metrics.txt"
for series in pool_route_ns pool_commit_ns pool_barrier_ns pool_apply_queue_depth \
	pool_epochs_total 'http_request_ns{route="/v1/apply",quantile="0.99"}'; do
	grep -qF "$series" "$tmp/metrics.txt" || {
		echo "FAIL: /metrics missing $series"; exit 1; }
done

echo "PASS: loadtest ($MODE) $(cat "$tmp/loadgen.json")"
