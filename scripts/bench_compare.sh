#!/usr/bin/env bash
# Records the backend and batching comparisons into BENCH_pr5.json:
# node-rounds/s per protocol per backend with the flat/coro speedup
# (engine round loop, Israeli-Itai, MIS, LPR quarter, the core pipeline
# and LocalGreedy), the multi-worker scaling sweep (Config.Workers in
# {1,2,4,8,16}), the batch-runner amortization pair, the PR-4
# dynamic-maintainer switch pair — and, new in PR 5, the active-set
# region-repair pair: ns per small-batch maintenance slot on a 4096-node
# slab with the engine stepping only the repair region versus the PR-4
# full sweep (identical maintainers, bit-identical matchings; the ratio
# is pure sweep tax). Extends the BENCH trajectory (BENCH_baseline.json,
# BENCH_pr2.json, BENCH_pr3.json, BENCH_pr4.json).
# Run from the repository root: ./scripts/bench_compare.sh
set -euo pipefail

cd "$(dirname "$0")/.."
out=BENCH_pr5.json
benchtime=${BENCHTIME:-1s}

# The pairs and the worker sweep run as separate invocations: a "/" in a
# -bench alternation would be treated as a sub-benchmark separator.
raw=$(go test -run '^$' -benchtime "$benchtime" \
	-bench '^(BenchmarkEngineRound|BenchmarkEngineRoundFlat|BenchmarkAlgIsraeliItai|BenchmarkAlgIsraeliItaiCoro|BenchmarkAlgMIS|BenchmarkAlgMISCoro|BenchmarkAlgLPRQuarter|BenchmarkAlgLPRQuarterCoro|BenchmarkAlgBipartiteMCM|BenchmarkAlgBipartiteMCMCoro|BenchmarkAlgGeneralMCM|BenchmarkAlgGeneralMCMCoro|BenchmarkAlgWeightedMWM|BenchmarkAlgWeightedMWMCoro|BenchmarkAlgLocalGreedy|BenchmarkAlgLocalGreedyCoro|BenchmarkRunnerShortFresh|BenchmarkRunnerShortReuse|BenchmarkDynamicSwitchIncremental|BenchmarkDynamicSwitchRecompute|BenchmarkDynamicRegionRepairActive|BenchmarkDynamicRegionRepairFullSweep)$' \
	. 2>&1)
raw+=$'\n'$(go test -run '^$' -benchtime "$benchtime" \
	-bench '^(BenchmarkEngineRoundWorkers|BenchmarkEngineRoundFlatWorkers)$/^w[0-9]+$' \
	. 2>&1)

{
	echo '{'
	echo '  "recorded": "'"$(date -u +%Y-%m-%dT%H:%M:%SZ)"'",'
	echo '  "go": "'"$(go env GOVERSION)"'",'
	echo '  "cpus": '"$(nproc)"','
	echo '  "cpu": "'"$(printf '%s\n' "$raw" | sed -n 's/^cpu: //p' | head -1)"'",'
	echo '  "benchtime": "'"$benchtime"'",'
	echo '  "metric": "node-rounds/s (pairs/scaling), ns/slot (dynamic)",'
	echo '  "note": "coroutine vs flat execution backend; bit-identical outputs (differential suites in internal/core, internal/lpr, internal/israeliitai, internal/mis). scaling sweeps Config.Workers on both backends. runner_short compares fresh-engine vs dist.Runner setup amortization on an 8-round 256-node run. dynamic_switch compares one 16-port switch slot under bursty(16) traffic at load 0.95: incremental Maintainer (diff + regional repair, persistent engine) vs per-slot DistMCM (fresh request graph + engine + cold BipartiteMCM); E14 reports the rounds/messages twin of this pair. dynamic_region compares one small-batch maintenance slot (2-edge toggle, K=2, AuditEvery=16) on a 4096-node 3-regular bipartite slab: active-set execution (engine steps only the repair region) vs Options.FullSweep (every node stepped every round, the PR-4 schedule); matchings are bit-identical, so the speedup is pure sweep tax. E15 reports the node-rounds twin of this pair.",'
	printf '%s\n' "$raw" | awk '
		/^Benchmark/ {
			name=$1; sub(/-[0-9]+$/, "", name)
			rate=0
			for (i=2; i<NF; i++) if ($(i+1) == "node-rounds/s") rate=$i
			rates[name]=rate
			nspop=0
			for (i=2; i<NF; i++) if ($(i+1) == "ns/op") nspop=$i
			ns[name]=nspop
		}
		END {
			pairs["EngineRound"]  = "BenchmarkEngineRound BenchmarkEngineRoundFlat"
			pairs["IsraeliItai"]  = "BenchmarkAlgIsraeliItaiCoro BenchmarkAlgIsraeliItai"
			pairs["MIS"]          = "BenchmarkAlgMISCoro BenchmarkAlgMIS"
			pairs["LPRQuarter"]   = "BenchmarkAlgLPRQuarterCoro BenchmarkAlgLPRQuarter"
			pairs["BipartiteMCM"] = "BenchmarkAlgBipartiteMCMCoro BenchmarkAlgBipartiteMCM"
			pairs["GeneralMCM"]   = "BenchmarkAlgGeneralMCMCoro BenchmarkAlgGeneralMCM"
			pairs["WeightedMWM"]  = "BenchmarkAlgWeightedMWMCoro BenchmarkAlgWeightedMWM"
			pairs["LocalGreedy"]  = "BenchmarkAlgLocalGreedyCoro BenchmarkAlgLocalGreedy"
			order[1]="EngineRound"; order[2]="IsraeliItai"; order[3]="MIS"; order[4]="LPRQuarter"
			order[5]="BipartiteMCM"; order[6]="GeneralMCM"; order[7]="WeightedMWM"; order[8]="LocalGreedy"
			printf "  \"pairs\": [\n"
			for (k=1; k<=8; k++) {
				p=order[k]
				split(pairs[p], b, " ")
				coro=rates[b[1]]+0; flat=rates[b[2]]+0
				speedup = (coro > 0) ? flat/coro : 0
				printf "    {\"name\": \"%s\", \"coro\": %.0f, \"flat\": %.0f, \"speedup\": %.2f}%s\n", \
					p, coro, flat, speedup, (k<8 ? "," : "")
			}
			printf "  ],\n"
			fresh=rates["BenchmarkRunnerShortFresh"]+0
			reuse=rates["BenchmarkRunnerShortReuse"]+0
			printf "  \"runner_short\": {\"fresh\": %.0f, \"reuse\": %.0f, \"speedup\": %.2f},\n", \
				fresh, reuse, (fresh > 0 ? reuse/fresh : 0)
			inc=ns["BenchmarkDynamicSwitchIncremental"]+0
			full=ns["BenchmarkDynamicSwitchRecompute"]+0
			printf "  \"dynamic_switch\": {\"incremental_ns_per_slot\": %.0f, \"recompute_ns_per_slot\": %.0f, \"speedup\": %.2f},\n", \
				inc, full, (inc > 0 ? full/inc : 0)
			ract=ns["BenchmarkDynamicRegionRepairActive"]+0
			rfull=ns["BenchmarkDynamicRegionRepairFullSweep"]+0
			printf "  \"dynamic_region\": {\"active_ns_per_slot\": %.0f, \"fullsweep_ns_per_slot\": %.0f, \"speedup\": %.2f},\n", \
				ract, rfull, (ract > 0 ? rfull/ract : 0)
			printf "  \"scaling\": [\n"
			nw=split("1 2 4 8 16", ws, " ")
			for (k=1; k<=nw; k++) {
				w=ws[k]
				coro=rates["BenchmarkEngineRoundWorkers/w" w]+0
				flat=rates["BenchmarkEngineRoundFlatWorkers/w" w]+0
				printf "    {\"workers\": %s, \"coro\": %.0f, \"flat\": %.0f}%s\n", \
					w, coro, flat, (k<nw ? "," : "")
			}
			printf "  ]\n"
		}'
	echo '}'
} > "$out"

echo "wrote $out:"
cat "$out"
