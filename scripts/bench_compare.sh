#!/usr/bin/env bash
# Records the coroutine-vs-flat backend comparison into BENCH_pr2.json:
# node-rounds/s per protocol per backend plus the flat/coro speedup —
# extending the BENCH trajectory started by BENCH_baseline.json.
# Run from the repository root: ./scripts/bench_compare.sh
set -euo pipefail

cd "$(dirname "$0")/.."
out=BENCH_pr2.json
benchtime=${BENCHTIME:-1s}

raw=$(go test -run '^$' -benchtime "$benchtime" \
	-bench '^(BenchmarkEngineRound|BenchmarkEngineRoundFlat|BenchmarkAlgIsraeliItai|BenchmarkAlgIsraeliItaiCoro|BenchmarkAlgMIS|BenchmarkAlgMISCoro|BenchmarkAlgLPRQuarter|BenchmarkAlgLPRQuarterCoro)$' \
	. 2>&1)

{
	echo '{'
	echo '  "recorded": "'"$(date -u +%Y-%m-%dT%H:%M:%SZ)"'",'
	echo '  "go": "'"$(go env GOVERSION)"'",'
	echo '  "gomaxprocs": '"$(nproc)"','
	echo '  "cpu": "'"$(printf '%s\n' "$raw" | sed -n 's/^cpu: //p' | head -1)"'",'
	echo '  "benchtime": "'"$benchtime"'",'
	echo '  "metric": "node-rounds/s",'
	echo '  "note": "coroutine vs flat execution backend; bit-identical outputs, see differential tests",'
	echo '  "pairs": ['
	printf '%s\n' "$raw" | awk '
		/^Benchmark/ {
			name=$1; sub(/-[0-9]+$/, "", name)
			# node-rounds/s is the extra metric column: value unit
			rate=0
			for (i=2; i<NF; i++) if ($(i+1) == "node-rounds/s") rate=$i
			rates[name]=rate
		}
		END {
			n=0
			pairs["EngineRound"]      = "BenchmarkEngineRound BenchmarkEngineRoundFlat"
			pairs["IsraeliItai"]      = "BenchmarkAlgIsraeliItaiCoro BenchmarkAlgIsraeliItai"
			pairs["MIS"]              = "BenchmarkAlgMISCoro BenchmarkAlgMIS"
			pairs["LPRQuarter"]       = "BenchmarkAlgLPRQuarterCoro BenchmarkAlgLPRQuarter"
			order[1]="EngineRound"; order[2]="IsraeliItai"; order[3]="MIS"; order[4]="LPRQuarter"
			for (k=1; k<=4; k++) {
				p=order[k]
				split(pairs[p], b, " ")
				coro=rates[b[1]]+0; flat=rates[b[2]]+0
				speedup = (coro > 0) ? flat/coro : 0
				line=sprintf("    {\"name\": \"%s\", \"coro\": %.0f, \"flat\": %.0f, \"speedup\": %.2f}", p, coro, flat, speedup)
				lines[n++]=line
			}
			for (i=0; i<n; i++) printf "%s%s\n", lines[i], (i<n-1 ? "," : "")
		}'
	echo '  ]'
	echo '}'
} > "$out"

echo "wrote $out:"
cat "$out"
