#!/usr/bin/env bash
# Records the coroutine-vs-flat backend comparison into BENCH_pr3.json:
# node-rounds/s per protocol per backend with the flat/coro speedup — now
# including the core pipeline (BipartiteMCM, GeneralMCM, WeightedMWM) and
# LocalGreedy pairs added in PR 3 — plus the multi-worker scaling sweep
# (Config.Workers ∈ {1,2,4,8,16}) and the batch-runner amortization pair.
# Extends the BENCH trajectory (BENCH_baseline.json, BENCH_pr2.json).
# Run from the repository root: ./scripts/bench_compare.sh
set -euo pipefail

cd "$(dirname "$0")/.."
out=BENCH_pr3.json
benchtime=${BENCHTIME:-1s}

# The pairs and the worker sweep run as separate invocations: a "/" in a
# -bench alternation would be treated as a sub-benchmark separator.
raw=$(go test -run '^$' -benchtime "$benchtime" \
	-bench '^(BenchmarkEngineRound|BenchmarkEngineRoundFlat|BenchmarkAlgIsraeliItai|BenchmarkAlgIsraeliItaiCoro|BenchmarkAlgMIS|BenchmarkAlgMISCoro|BenchmarkAlgLPRQuarter|BenchmarkAlgLPRQuarterCoro|BenchmarkAlgBipartiteMCM|BenchmarkAlgBipartiteMCMCoro|BenchmarkAlgGeneralMCM|BenchmarkAlgGeneralMCMCoro|BenchmarkAlgWeightedMWM|BenchmarkAlgWeightedMWMCoro|BenchmarkAlgLocalGreedy|BenchmarkAlgLocalGreedyCoro|BenchmarkRunnerShortFresh|BenchmarkRunnerShortReuse)$' \
	. 2>&1)
raw+=$'\n'$(go test -run '^$' -benchtime "$benchtime" \
	-bench '^(BenchmarkEngineRoundWorkers|BenchmarkEngineRoundFlatWorkers)$/^w[0-9]+$' \
	. 2>&1)

{
	echo '{'
	echo '  "recorded": "'"$(date -u +%Y-%m-%dT%H:%M:%SZ)"'",'
	echo '  "go": "'"$(go env GOVERSION)"'",'
	echo '  "cpus": '"$(nproc)"','
	echo '  "cpu": "'"$(printf '%s\n' "$raw" | sed -n 's/^cpu: //p' | head -1)"'",'
	echo '  "benchtime": "'"$benchtime"'",'
	echo '  "metric": "node-rounds/s",'
	echo '  "note": "coroutine vs flat execution backend; bit-identical outputs (differential suites in internal/core, internal/lpr, internal/israeliitai, internal/mis). scaling sweeps Config.Workers on both backends; workers beyond the cpus count measure pure barrier/dispatch overhead. runner_short compares fresh-engine vs dist.Runner setup amortization on an 8-round 256-node run.",'
	printf '%s\n' "$raw" | awk '
		/^Benchmark/ {
			name=$1; sub(/-[0-9]+$/, "", name)
			rate=0
			for (i=2; i<NF; i++) if ($(i+1) == "node-rounds/s") rate=$i
			rates[name]=rate
		}
		END {
			npair=0
			pairs["EngineRound"]  = "BenchmarkEngineRound BenchmarkEngineRoundFlat"
			pairs["IsraeliItai"]  = "BenchmarkAlgIsraeliItaiCoro BenchmarkAlgIsraeliItai"
			pairs["MIS"]          = "BenchmarkAlgMISCoro BenchmarkAlgMIS"
			pairs["LPRQuarter"]   = "BenchmarkAlgLPRQuarterCoro BenchmarkAlgLPRQuarter"
			pairs["BipartiteMCM"] = "BenchmarkAlgBipartiteMCMCoro BenchmarkAlgBipartiteMCM"
			pairs["GeneralMCM"]   = "BenchmarkAlgGeneralMCMCoro BenchmarkAlgGeneralMCM"
			pairs["WeightedMWM"]  = "BenchmarkAlgWeightedMWMCoro BenchmarkAlgWeightedMWM"
			pairs["LocalGreedy"]  = "BenchmarkAlgLocalGreedyCoro BenchmarkAlgLocalGreedy"
			order[1]="EngineRound"; order[2]="IsraeliItai"; order[3]="MIS"; order[4]="LPRQuarter"
			order[5]="BipartiteMCM"; order[6]="GeneralMCM"; order[7]="WeightedMWM"; order[8]="LocalGreedy"
			printf "  \"pairs\": [\n"
			for (k=1; k<=8; k++) {
				p=order[k]
				split(pairs[p], b, " ")
				coro=rates[b[1]]+0; flat=rates[b[2]]+0
				speedup = (coro > 0) ? flat/coro : 0
				printf "    {\"name\": \"%s\", \"coro\": %.0f, \"flat\": %.0f, \"speedup\": %.2f}%s\n", \
					p, coro, flat, speedup, (k<8 ? "," : "")
			}
			printf "  ],\n"
			fresh=rates["BenchmarkRunnerShortFresh"]+0
			reuse=rates["BenchmarkRunnerShortReuse"]+0
			printf "  \"runner_short\": {\"fresh\": %.0f, \"reuse\": %.0f, \"speedup\": %.2f},\n", \
				fresh, reuse, (fresh > 0 ? reuse/fresh : 0)
			printf "  \"scaling\": [\n"
			nw=split("1 2 4 8 16", ws, " ")
			for (k=1; k<=nw; k++) {
				w=ws[k]
				coro=rates["BenchmarkEngineRoundWorkers/w" w]+0
				flat=rates["BenchmarkEngineRoundFlatWorkers/w" w]+0
				printf "    {\"workers\": %s, \"coro\": %.0f, \"flat\": %.0f}%s\n", \
					w, coro, flat, (k<nw ? "," : "")
			}
			printf "  ]\n"
		}'
	echo '}'
} > "$out"

echo "wrote $out:"
cat "$out"
