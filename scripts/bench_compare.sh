#!/usr/bin/env bash
# Records the backend and batching comparisons into BENCH_pr9.json:
# node-rounds/s per protocol per backend with the flat/coro speedup —
# now including the last two coroutine-only algorithms ported to flat
# form in PR 7 (the Lemma 3.7 strict-CONGEST chunk pipeline and the
# LOCAL-model generic algorithm) — plus the multi-worker scaling sweep
# (Config.Workers in {1,2,4,8,16}), the new workers × topology grid
# (4-regular / dense G(n,m) / irregular G(n,p) / star hub at workers
# {1,2,4,8}), the batch-runner amortization pair, the dynamic-maintainer
# switch pair, the PR-5 active-set region-repair pair — and the PR-8
# sharded-serving group: one churn slot through the 4-shard
# fault-tolerant Pool vs the same stream through one unsharded
# Maintainer (the price of the failure-domain boundary), plus the
# flagged query path — and the PR-9 telemetry_overhead group: the flat
# engine sweep and the pool apply path rerun with a live telemetry
# registry (counters, histograms, per-shard gauges, event ring), pricing
# the instrumentation against the <2% acceptance bound. Extends the
# BENCH trajectory (BENCH_baseline.json, BENCH_pr2.json, BENCH_pr3.json,
# BENCH_pr4.json, BENCH_pr5.json, BENCH_pr7.json, BENCH_pr8.json).
#
# The recording host is a single shared vCPU whose throughput swings by
# ±25% over minutes, so each benchmark runs COUNT times and the maximum
# rate is recorded: the max estimates uncontended-hardware throughput,
# which is the number comparable across PRs. Raise COUNT (and BENCHTIME)
# for stabler numbers.
# Run from the repository root: ./scripts/bench_compare.sh
set -euo pipefail

cd "$(dirname "$0")/.."
out=BENCH_pr9.json
benchtime=${BENCHTIME:-1s}
count=${COUNT:-3}

# The pairs and the sweeps run as separate invocations: a "/" in a
# -bench alternation would be treated as a sub-benchmark separator.
# The amortization/maintenance pairs get a process of their own — the
# LOCAL-model generic pair retires hundreds of MB of map garbage, and
# sharing its heap skews the GC pacing of whatever runs next.
raw=$(go test -run '^$' -benchtime "$benchtime" -count "$count" \
	-bench '^(BenchmarkEngineRound|BenchmarkEngineRoundFlat|BenchmarkAlgIsraeliItai|BenchmarkAlgIsraeliItaiCoro|BenchmarkAlgMIS|BenchmarkAlgMISCoro|BenchmarkAlgLPRQuarter|BenchmarkAlgLPRQuarterCoro|BenchmarkAlgBipartiteMCM|BenchmarkAlgBipartiteMCMCoro|BenchmarkAlgGeneralMCM|BenchmarkAlgGeneralMCMCoro|BenchmarkAlgWeightedMWM|BenchmarkAlgWeightedMWMCoro|BenchmarkAlgLocalGreedy|BenchmarkAlgLocalGreedyCoro|BenchmarkAlgBipartiteStrict|BenchmarkAlgBipartiteStrictCoro|BenchmarkAlgGenericMCM|BenchmarkAlgGenericMCMCoro)$' \
	. 2>&1)
raw+=$'\n'$(go test -run '^$' -benchtime "$benchtime" -count "$count" \
	-bench '^(BenchmarkRunnerShortFresh|BenchmarkRunnerShortReuse|BenchmarkDynamicSwitchIncremental|BenchmarkDynamicSwitchRecompute|BenchmarkDynamicRegionRepairActive|BenchmarkDynamicRegionRepairFullSweep)$' \
	. 2>&1)
raw+=$'\n'$(go test -run '^$' -benchtime "$benchtime" -count "$count" \
	-bench '^(BenchmarkShardServingPoolApply|BenchmarkShardServingSingleApply|BenchmarkShardServingQuery)$' \
	. 2>&1)
raw+=$'\n'$(go test -run '^$' -benchtime "$benchtime" -count "$count" \
	-bench '^(BenchmarkEngineRoundFlatTelemetry|BenchmarkShardServingSingleApplyTelemetry|BenchmarkShardServingPoolApplyTelemetry)$' \
	. 2>&1)
raw+=$'\n'$(go test -run '^$' -benchtime "$benchtime" -count "$count" \
	-bench '^(BenchmarkEngineRoundWorkers|BenchmarkEngineRoundFlatWorkers)$/^w[0-9]+$' \
	. 2>&1)
raw+=$'\n'$(go test -run '^$' -benchtime "$benchtime" -count "$count" \
	-bench '^BenchmarkEngineRoundFlatTopo$' \
	. 2>&1)

{
	echo '{'
	echo '  "recorded": "'"$(date -u +%Y-%m-%dT%H:%M:%SZ)"'",'
	echo '  "go": "'"$(go env GOVERSION)"'",'
	echo '  "cpus": '"$(nproc)"','
	echo '  "cpu": "'"$(printf '%s\n' "$raw" | sed -n 's/^cpu: //p' | head -1)"'",'
	echo '  "benchtime": "'"$benchtime"'",'
	echo '  "count": '"$count"','
	echo '  "metric": "node-rounds/s (pairs/scaling/topo), ns/slot (dynamic); best of count runs",'
	echo '  "note": "coroutine vs flat execution backend; bit-identical outputs (differential suites in internal/core, internal/lpr, internal/israeliitai, internal/mis). BipartiteStrict (Lemma 3.7 B-bit chunk pipelining, B=8) and GenericMCM (LOCAL-model floods) are the PR-7 flat ports: the strict pair is sub-round dense so the backend tax dominates; the generic pair is dominated by per-message map merging, so the backends tie — an honest bound on what backend work can buy. scaling sweeps Config.Workers on both backends; topo_scaling sweeps the flat backend across message patterns (uniform 4-regular, dense gnm16, irregular gnp8, star hub). The host is a single vCPU: one worker is the knee, and every multi-worker point prices the staged-mode delivery pass plus dispatch overhead rather than real parallelism — except the star row, where the hub cost is serial in any schedule. runner_short compares fresh-engine vs dist.Runner setup amortization on an 8-round 256-node run; PR 7 closed this gap (2.9x in BENCH_pr5 to ~1x) by recycling engine slabs through a process-wide pool (see internal/dist/slabs.go). dynamic_switch and dynamic_region are the PR-4/PR-5 maintenance pairs, unchanged. shard_serving is the PR-8 group: one 4-toggle churn slot on a 512+512 slab through the 4-shard fault-tolerant Pool (routing, 4 parallel shard engines, crossing resolution, periodic conflict audit) vs the identical stream through one unsharded Maintainer; overhead_x = pool/single is the price of the failure-domain boundary, and query_ns prices one flagged read off the pool snapshot cache. telemetry_overhead is the PR-9 group: the flat engine sweep, the unsharded Maintainer slot and the pool apply slot rerun with a live telemetry registry installed (engine: process-wide counters + sweep histogram; maintainer: apply/repair/audit histograms + event ring; pool: all of that plus per-shard gauges and pool events). engine_overhead_x = bare/instrumented node-rounds/s; maintainer_overhead_x and pool_overhead_x = instrumented/bare ns per slot; all expected within noise of 1.0 and bounded by the <2% acceptance criterion.",'
	printf '%s\n' "$raw" | awk '
		/^Benchmark/ {
			name=$1; sub(/-[0-9]+$/, "", name)
			rate=0
			for (i=2; i<NF; i++) if ($(i+1) == "node-rounds/s") rate=$i
			if (rate > rates[name]) rates[name]=rate
			nspop=0
			for (i=2; i<NF; i++) if ($(i+1) == "ns/op") nspop=$i
			if (ns[name] == 0 || (nspop > 0 && nspop < ns[name])) ns[name]=nspop
		}
		END {
			pairs["EngineRound"]     = "BenchmarkEngineRound BenchmarkEngineRoundFlat"
			pairs["IsraeliItai"]     = "BenchmarkAlgIsraeliItaiCoro BenchmarkAlgIsraeliItai"
			pairs["MIS"]             = "BenchmarkAlgMISCoro BenchmarkAlgMIS"
			pairs["LPRQuarter"]      = "BenchmarkAlgLPRQuarterCoro BenchmarkAlgLPRQuarter"
			pairs["BipartiteMCM"]    = "BenchmarkAlgBipartiteMCMCoro BenchmarkAlgBipartiteMCM"
			pairs["BipartiteStrict"] = "BenchmarkAlgBipartiteStrictCoro BenchmarkAlgBipartiteStrict"
			pairs["GeneralMCM"]      = "BenchmarkAlgGeneralMCMCoro BenchmarkAlgGeneralMCM"
			pairs["GenericMCM"]      = "BenchmarkAlgGenericMCMCoro BenchmarkAlgGenericMCM"
			pairs["WeightedMWM"]     = "BenchmarkAlgWeightedMWMCoro BenchmarkAlgWeightedMWM"
			pairs["LocalGreedy"]     = "BenchmarkAlgLocalGreedyCoro BenchmarkAlgLocalGreedy"
			order[1]="EngineRound"; order[2]="IsraeliItai"; order[3]="MIS"; order[4]="LPRQuarter"
			order[5]="BipartiteMCM"; order[6]="BipartiteStrict"; order[7]="GeneralMCM"
			order[8]="GenericMCM"; order[9]="WeightedMWM"; order[10]="LocalGreedy"
			np=10
			printf "  \"pairs\": [\n"
			for (k=1; k<=np; k++) {
				p=order[k]
				split(pairs[p], b, " ")
				coro=rates[b[1]]+0; flat=rates[b[2]]+0
				speedup = (coro > 0) ? flat/coro : 0
				printf "    {\"name\": \"%s\", \"coro\": %.0f, \"flat\": %.0f, \"speedup\": %.2f}%s\n", \
					p, coro, flat, speedup, (k<np ? "," : "")
			}
			printf "  ],\n"
			fresh=rates["BenchmarkRunnerShortFresh"]+0
			reuse=rates["BenchmarkRunnerShortReuse"]+0
			printf "  \"runner_short\": {\"fresh\": %.0f, \"reuse\": %.0f, \"speedup\": %.2f},\n", \
				fresh, reuse, (fresh > 0 ? reuse/fresh : 0)
			inc=ns["BenchmarkDynamicSwitchIncremental"]+0
			full=ns["BenchmarkDynamicSwitchRecompute"]+0
			printf "  \"dynamic_switch\": {\"incremental_ns_per_slot\": %.0f, \"recompute_ns_per_slot\": %.0f, \"speedup\": %.2f},\n", \
				inc, full, (inc > 0 ? full/inc : 0)
			ract=ns["BenchmarkDynamicRegionRepairActive"]+0
			rfull=ns["BenchmarkDynamicRegionRepairFullSweep"]+0
			printf "  \"dynamic_region\": {\"active_ns_per_slot\": %.0f, \"fullsweep_ns_per_slot\": %.0f, \"speedup\": %.2f},\n", \
				ract, rfull, (ract > 0 ? rfull/ract : 0)
			spool=ns["BenchmarkShardServingPoolApply"]+0
			sserial=ns["BenchmarkShardServingPoolApplySerial"]+0
			sconc=ns["BenchmarkShardServingPoolApplyConcurrent"]+0
			ssingle=ns["BenchmarkShardServingSingleApply"]+0
			squery=ns["BenchmarkShardServingQuery"]+0
			printf "  \"shard_serving\": {\"pool_ns_per_slot\": %.0f, \"serial_ns_per_slot\": %.0f, \"concurrent_ns_per_slot\": %.0f, \"single_ns_per_slot\": %.0f, \"overhead_x\": %.2f, \"query_ns\": %.0f},\n", \
				spool, sserial, sconc, ssingle, (ssingle > 0 ? spool/ssingle : 0), squery
			tflat=rates["BenchmarkEngineRoundFlatTelemetry"]+0
			bflat=rates["BenchmarkEngineRoundFlat"]+0
			tsingle=ns["BenchmarkShardServingSingleApplyTelemetry"]+0
			tpool=ns["BenchmarkShardServingPoolApplyTelemetry"]+0
			printf "  \"telemetry_overhead\": {\"engine_flat\": %.0f, \"engine_flat_telemetry\": %.0f, \"engine_overhead_x\": %.4f, \"maintainer_ns_per_slot\": %.0f, \"maintainer_telemetry_ns_per_slot\": %.0f, \"maintainer_overhead_x\": %.4f, \"pool_ns_per_slot\": %.0f, \"pool_telemetry_ns_per_slot\": %.0f, \"pool_overhead_x\": %.4f},\n", \
				bflat, tflat, (tflat > 0 ? bflat/tflat : 0), ssingle, tsingle, (ssingle > 0 ? tsingle/ssingle : 0), spool, tpool, (spool > 0 ? tpool/spool : 0)
			printf "  \"scaling\": [\n"
			nw=split("1 2 4 8 16", ws, " ")
			for (k=1; k<=nw; k++) {
				w=ws[k]
				coro=rates["BenchmarkEngineRoundWorkers/w" w]+0
				flat=rates["BenchmarkEngineRoundFlatWorkers/w" w]+0
				printf "    {\"workers\": %s, \"coro\": %.0f, \"flat\": %.0f}%s\n", \
					w, coro, flat, (k<nw ? "," : "")
			}
			printf "  ],\n"
			printf "  \"topo_scaling\": [\n"
			nt=split("dreg4 gnm16 gnp8 star", ts, " ")
			nw2=split("1 2 4 8", ws2, " ")
			row=0
			for (k=1; k<=nt; k++) {
				t=ts[k]
				for (j=1; j<=nw2; j++) {
					w=ws2[j]
					row++
					r=rates["BenchmarkEngineRoundFlatTopo/" t "/w" w]+0
					printf "    {\"topology\": \"%s\", \"workers\": %s, \"flat\": %.0f}%s\n", \
						t, w, r, (row<nt*nw2 ? "," : "")
				}
			}
			printf "  ]\n"
		}'
	echo '}'
} > "$out"

echo "wrote $out:"
cat "$out"
