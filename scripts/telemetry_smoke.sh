#!/usr/bin/env bash
# End-to-end smoke of the observability surface: boots a real distmatchd
# (serving listener + -debugaddr listener), drives applies through a
# shard kill/restart, and asserts that
#
#   - GET /metrics is a parseable Prometheus exposition (validated with
#     the repo's own ValidateExposition via cmd/expositioncheck) carrying
#     the engine, maintainer, pool, per-shard and per-route series;
#   - GET /v1/events shows the failover as structured records
#     (shard_kill, shard_restart) stamped with Apply slots;
#   - GET /v1/stats carries per-shard health/backoff;
#   - the debug listener serves pprof and a second /metrics.
#
# The CI telemetry job runs this; run it locally from the repo root:
# ./scripts/telemetry_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

PORT=${PORT:-18471}
DEBUGPORT=${DEBUGPORT:-18472}
BASE="http://127.0.0.1:$PORT"
DEBUG="http://127.0.0.1:$DEBUGPORT"

tmp=$(mktemp -d)
trap 'kill "$srv_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/distmatchd" ./cmd/distmatchd

"$tmp/distmatchd" -addr "127.0.0.1:$PORT" -debugaddr "127.0.0.1:$DEBUGPORT" \
	-nx 24 -ny 24 -p 0.2 -shards 4 -k 2 -seed 7 -audit 4 \
	>"$tmp/distmatchd.log" 2>&1 &
srv_pid=$!

for i in $(seq 1 50); do
	if curl -fsS "$BASE/v1/health" >/dev/null 2>&1; then break; fi
	if ! kill -0 "$srv_pid" 2>/dev/null; then
		echo "FAIL: distmatchd exited during startup:"; cat "$tmp/distmatchd.log"; exit 1
	fi
	sleep 0.1
done

edges=$(curl -fsS "$BASE/v1/matching" | jq '.edges' >/dev/null; echo ok)
[ "$edges" = ok ]

# Insert a spread of edges, then drive quiet applies so the audit runs.
m=$(curl -fsS "$BASE/v1/stats" | jq '.shards | length')
[ "$m" = 4 ] || { echo "FAIL: stats reports $m shards"; exit 1; }
ups=""
for e in $(seq 0 40); do ups+="{\"edge\":$e,\"op\":\"insert\"},"; done
curl -fsS -X POST "$BASE/v1/apply" -d "{\"updates\":[${ups%,}]}" | jq -e '.degraded == false' >/dev/null

# Failover: kill shard 1, apply through the outage, force the restart.
curl -fsS -X POST "$BASE/v1/shards/1/kill" | jq -e '.killed == 1' >/dev/null
curl -fsS -X POST "$BASE/v1/apply" -d '{"updates":[]}' >/dev/null
curl -fsS "$BASE/v1/stats" | jq -e '.shards[1].up == false and .shards[1].backoff >= 1' >/dev/null
curl -fsS -X POST "$BASE/v1/shards/1/restart" | jq -e '.restarted == 1' >/dev/null
for i in $(seq 1 6); do curl -fsS -X POST "$BASE/v1/apply" -d '{"updates":[]}' >/dev/null; done
curl -fsS "$BASE/v1/health" | jq -e '.degraded == false' >/dev/null

# The exposition parses and carries every layer's series.
curl -fsS "$BASE/metrics" >"$tmp/metrics.txt"
for series in engine_runs_total engine_sweep_ns maintainer_apply_ns pool_apply_ns \
	pool_step 'shard_up{shard="1"}' 'http_request_ns{route="/v1/apply"' \
	'http_requests_total{route="/v1/shards/{id}/kill",code="200"}'; do
	grep -qF "$series" "$tmp/metrics.txt" || {
		echo "FAIL: /metrics missing $series"; cat "$tmp/metrics.txt"; exit 1; }
done
go run ./cmd/expositioncheck <"$tmp/metrics.txt"

# The structured trace shows the failover, slot-stamped.
curl -fsS "$BASE/v1/events?n=4096" >"$tmp/events.json"
for kind in shard_kill shard_restart health audit_pass; do
	jq -e --arg k "$kind" '[.events[] | select(.kind == $k)] | length > 0' \
		"$tmp/events.json" >/dev/null || {
		echo "FAIL: /v1/events missing kind $kind"; cat "$tmp/events.json"; exit 1; }
done

# The debug listener serves pprof and its own exposition.
curl -fsS "$DEBUG/debug/pprof/" >/dev/null
curl -fsS "$DEBUG/metrics" >"$tmp/debug_metrics.txt"
grep -q engine_runs_total "$tmp/debug_metrics.txt"

echo "PASS: telemetry smoke ($(grep -c '^[a-z]' "$tmp/metrics.txt") sample lines, $(jq '.total' "$tmp/events.json") events)"
