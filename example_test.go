package distmatch_test

import (
	"fmt"

	"distmatch"
)

// ExampleMCMBipartite demonstrates the paper's flagship algorithm: the
// bipartite (1−1/k)-approximate maximum cardinality matching of Theorem 3.8.
func ExampleMCMBipartite() {
	// A tiny fixed graph: 2 clients, 2 servers, 3 possible links.
	b := distmatch.NewBuilder(4)
	b.SetSide(0, 0)
	b.SetSide(1, 0)
	b.SetSide(2, 1)
	b.SetSide(3, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 2)
	g := b.MustBuild()

	res := distmatch.MCMBipartite(g, 3, 1)
	fmt.Println("matched pairs:", res.Matching.Size())
	// Output:
	// matched pairs: 2
}

// ExampleMWMHalf demonstrates the weighted matching of Theorem 4.5 on the
// paper's Figure 2 weights.
func ExampleMWMHalf() {
	b := distmatch.NewBuilder(4)
	b.AddWeightedEdge(0, 1, 1)
	b.AddWeightedEdge(1, 2, 10)
	b.AddWeightedEdge(2, 3, 1)
	g := b.MustBuild()

	res := distmatch.MWMHalf(g, 0.1, 1)
	fmt.Println("weight:", res.Matching.Weight(g))
	// Output:
	// weight: 10
}

// ExampleMaximalMatching shows the classical Israeli–Itai baseline.
func ExampleMaximalMatching() {
	g := distmatch.RandomGraph(7, 100, 0.05)
	res := distmatch.MaximalMatching(g, 7)
	fmt.Println("maximal:", res.Matching.IsMaximal(g))
	// Output:
	// maximal: true
}

// ExampleOptimalMWM shows the exact centralized reference used to measure
// approximation ratios.
func ExampleOptimalMWM() {
	b := distmatch.NewBuilder(3)
	b.AddWeightedEdge(0, 1, 5)
	b.AddWeightedEdge(1, 2, 4)
	b.AddWeightedEdge(0, 2, 3)
	g := b.MustBuild()
	fmt.Println("optimum weight:", distmatch.OptimalMWM(g).Weight(g))
	// Output:
	// optimum weight: 5
}
