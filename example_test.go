package distmatch_test

import (
	"fmt"

	"distmatch"
)

// ExampleMCMBipartite demonstrates the paper's flagship algorithm: the
// bipartite (1−1/k)-approximate maximum cardinality matching of Theorem 3.8.
func ExampleMCMBipartite() {
	// A tiny fixed graph: 2 clients, 2 servers, 3 possible links.
	b := distmatch.NewBuilder(4)
	b.SetSide(0, 0)
	b.SetSide(1, 0)
	b.SetSide(2, 1)
	b.SetSide(3, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 2)
	g := b.MustBuild()

	res := distmatch.MCMBipartite(g, 3, 1)
	fmt.Println("matched pairs:", res.Matching.Size())
	// Output:
	// matched pairs: 2
}

// ExampleMWMHalf demonstrates the weighted matching of Theorem 4.5 on the
// paper's Figure 2 weights.
func ExampleMWMHalf() {
	b := distmatch.NewBuilder(4)
	b.AddWeightedEdge(0, 1, 1)
	b.AddWeightedEdge(1, 2, 10)
	b.AddWeightedEdge(2, 3, 1)
	g := b.MustBuild()

	res := distmatch.MWMHalf(g, 0.1, 1)
	fmt.Println("weight:", res.Matching.Weight(g))
	// Output:
	// weight: 10
}

// ExampleNewMaintainer demonstrates incremental maintenance: a matching
// served across batched edge updates instead of recomputed per change.
func ExampleNewMaintainer() {
	// The slab fixes 2 clients, 2 servers and the 4 possible links;
	// which links exist at any moment is mutable state.
	b := distmatch.NewBuilder(4)
	b.SetSide(0, 0)
	b.SetSide(1, 0)
	b.SetSide(2, 1)
	b.SetSide(3, 1)
	b.AddEdge(0, 2) // edge 0
	b.AddEdge(0, 3) // edge 1
	b.AddEdge(1, 2) // edge 2
	b.AddEdge(1, 3) // edge 3
	g := b.MustBuild()

	mt := distmatch.NewMaintainer(g, distmatch.MaintainerOptions{
		K: 2, Seed: 1, StartEmpty: true, AuditEvery: 1,
	})
	defer mt.Close()

	// Two links come up: both pairs can be served.
	mt.Apply(distmatch.Batch{
		{Edge: 0, Op: distmatch.EdgeInsert},
		{Edge: 3, Op: distmatch.EdgeInsert},
	})
	fmt.Println("after inserts:", mt.Matching().Size())

	// Link 0-2 fails and two new links come up; the repair swings
	// client 0 onto 0-3 by augmenting along 0-3-1-2, never touching the
	// rest of the network.
	mt.Apply(distmatch.Batch{
		{Edge: 0, Op: distmatch.EdgeDelete},
		{Edge: 1, Op: distmatch.EdgeInsert},
		{Edge: 2, Op: distmatch.EdgeInsert},
	})
	fmt.Println("after failover:", mt.Matching().Size())
	fmt.Println("audited (1-1/k) certificate held:", mt.Totals().AuditFailures == 0)
	// Output:
	// after inserts: 2
	// after failover: 2
	// audited (1-1/k) certificate held: true
}

// ExampleMaximalMatching shows the classical Israeli–Itai baseline.
func ExampleMaximalMatching() {
	g := distmatch.RandomGraph(7, 100, 0.05)
	res := distmatch.MaximalMatching(g, 7)
	fmt.Println("maximal:", res.Matching.IsMaximal(g))
	// Output:
	// maximal: true
}

// ExampleOptimalMWM shows the exact centralized reference used to measure
// approximation ratios.
func ExampleOptimalMWM() {
	b := distmatch.NewBuilder(3)
	b.AddWeightedEdge(0, 1, 5)
	b.AddWeightedEdge(1, 2, 4)
	b.AddWeightedEdge(0, 2, 3)
	g := b.MustBuild()
	fmt.Println("optimum weight:", distmatch.OptimalMWM(g).Weight(g))
	// Output:
	// optimum weight: 5
}
